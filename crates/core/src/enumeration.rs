//! Exact busy-beaver values for tiny state counts, by exhaustive protocol
//! enumeration (experiment E7), on the streaming staged pipeline.
//!
//! The search space of *all* protocols is doubly exponential, so the
//! enumeration restricts itself to a documented fragment:
//!
//! * leaderless protocols with a single input variable,
//! * **deterministic** transition relations (at most one transition per
//!   unordered pair of states, cf. Remark 1),
//! * thresholds confirmed by exhaustive verification of all inputs
//!   `2 ≤ i ≤ max_input`.
//!
//! Within this fragment the computed value `BB_det(n)` is exact (for
//! thresholds below the verification cap); it is a lower bound on the true
//! `BB(n)` because the fragment is a subset of all protocols, and every
//! protocol it reports is a genuine witness.  Exactness additionally
//! requires [`EnumerationResult::is_exact`]: a candidate whose slice
//! exploration hit [`ExploreLimits`] contributes an *inconclusive* `None`
//! verdict, which [`EnumerationResult::truncated_orbits`] now surfaces
//! instead of silently counting the candidate as examined.
//!
//! # Architecture
//!
//! The search is the composition of two layers that this module merely
//! drives:
//!
//! * the [generator](crate::orbit_stream) — [`OrbitSpace`] describes the
//!   encoded candidate space (input state fixed to 0, one representative
//!   per state-relabelling orbit) and
//!   [`OrbitStream`](crate::orbit_stream::OrbitStream) walks any index
//!   range lazily, yielding canonical candidates in increasing index order;
//! * the [triage pipeline](crate::candidate_pipeline) —
//!   [`CandidatePipeline`](crate::candidate_pipeline::CandidatePipeline)
//!   runs each candidate through ordered
//!   reject-early stages (symbolic pre-filter, η-floor filter, concrete
//!   slices with reject-on-first-failure) with a per-stage counter each,
//!   memoizing stage outcomes across candidates that share a
//!   coverable-support restriction.
//!
//! Both reductions preserve the exact `BB_det(n)` value: verification
//! verdicts are invariant under state relabelling (the reachability graphs
//! are isomorphic), and every orbit retains exactly one representative.
//! Because the canonical representative always has the *smallest* index of
//! its orbit, the pruned search also agrees with the unpruned one on any
//! index-prefix of the space (relevant when `max_protocols` caps the
//! enumeration).  See `crates/reach/README.md` for the full argument,
//! including the soundness of the cross-candidate memoization.
//!
//! The index space is segmented and fanned out across the
//! [work-stealing pool](popproto_exec) via the
//! [segmented search](crate::segmented::SegmentedSearch), with a shared
//! cross-segment transposition table.  The result is deterministic
//! regardless of worker count: ties between equal thresholds are broken
//! towards the smallest candidate index, and every per-stage counter is a
//! function of the candidate range alone
//! ([`EnumerationResult::memo_hits_cross`] excepted — hits against the
//! *shared* table depend on which segments other workers finished first;
//! the segment-local [`EnumerationResult::memo_hits`] stays deterministic
//! per segmentation).
//!
//! For searches too large for one sitting (the `BB_det(4)` prefix of
//! experiment E12), drive the same pipeline through the checkpointable
//! [`StreamingSearch`](crate::candidate_pipeline::StreamingSearch) instead.

use crate::candidate_pipeline::PipelineConfig;
use crate::orbit_stream::OrbitSpace;
use crate::segmented::{SegmentationConfig, SegmentedSearch};
use popproto_model::Protocol;
use popproto_reach::{unary_threshold_profile, ExploreLimits};
use serde::{Deserialize, Serialize};

/// The result of the exhaustive busy-beaver search for one state count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnumerationResult {
    /// Number of states `n`.
    pub num_states: usize,
    /// The largest verified threshold found (the busy-beaver value of the fragment).
    pub best_eta: Option<u64>,
    /// A protocol witnessing `best_eta`.
    pub witness: Option<Protocol>,
    /// Number of candidate encodings enumerated (canonical or not).
    pub protocols_examined: u64,
    /// Number of *canonical orbit representatives* that compute some
    /// threshold within the cap (non-canonical candidates are pruned before
    /// verification, so this is not comparable to a per-candidate count).
    pub threshold_protocols: u64,
    /// Candidates skipped as non-canonical members of an already-covered
    /// state-relabelling orbit.
    pub pruned_symmetric: u64,
    /// Canonical candidates rejected by the symbolic pre-filter before any
    /// concrete slice was explored (each would have profiled to `None`).
    pub pruned_symbolic: u64,
    /// Canonical candidates rejected by the η-floor filter (always `0` for
    /// [`busy_beaver_search`], which runs unfloored).
    pub pruned_eta_bounded: u64,
    /// Canonical candidates whose slice exploration hit [`ExploreLimits`]:
    /// their `None` verdict is a resource artefact, not a proof.  Any
    /// exactness claim must check [`EnumerationResult::is_exact`].
    pub truncated_orbits: u64,
    /// Candidates whose staged verdict was replayed from a **segment-local**
    /// transposition table.  Deterministic per segmentation: a pure function
    /// of the candidate ranges processed, independent of worker count and
    /// scheduling (it does vary when the segment *size* changes, because the
    /// local tables then cover different ranges).
    pub memo_hits: u64,
    /// Candidates whose staged verdict was replayed from the **shared**
    /// cross-segment table.  Scheduling-dependent (the only such counter):
    /// reported separately so equivalence tests never assert it.
    pub memo_hits_cross: u64,
    /// The verification cap used (thresholds are only confirmed up to this input).
    pub max_input: u64,
}

impl EnumerationResult {
    /// Returns `true` if every candidate's verdict was conclusive: no
    /// orbit's slice exploration was truncated by [`ExploreLimits`].  The
    /// computed `BB_det(n)` is exact for the fragment only when this holds
    /// (and the enumeration was not capped by `max_protocols`).
    pub fn is_exact(&self) -> bool {
        self.truncated_orbits == 0
    }
}

/// Exhaustively searches deterministic leaderless protocols with `num_states`
/// states for the largest verified threshold, fanning the candidate space
/// across all available CPU cores.
///
/// `max_input` bounds both the inputs verified and the thresholds that can be
/// confirmed (a threshold `η` needs `η + 1 ≤ max_input` to be distinguished
/// from `η + 1`).  `max_protocols` caps the enumeration as a safety net; the
/// capped search examines exactly the first `max_protocols` candidate
/// encodings, independent of thread count.
pub fn busy_beaver_search(
    num_states: usize,
    max_input: u64,
    max_protocols: u64,
    limits: &ExploreLimits,
) -> EnumerationResult {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    busy_beaver_search_with_threads(num_states, max_input, max_protocols, limits, threads)
}

/// [`busy_beaver_search`] with an explicit worker count on the
/// work-stealing pool.
///
/// The result is identical for every `threads ≥ 1` with two exceptions,
/// both memo diagnostics: [`EnumerationResult::memo_hits_cross`] is
/// scheduling-dependent, and [`EnumerationResult::memo_hits`] — while
/// deterministic per segmentation — varies with `threads` here because the
/// segment size is derived from the thread count (each local table covers a
/// different range).  Every other field is bit-identical (part of the
/// equivalence test suite).  `threads = 1` runs the whole range as a single
/// segment — the exact PR 4 sequential semantics, local memo table
/// included.
pub fn busy_beaver_search_with_threads(
    num_states: usize,
    max_input: u64,
    max_protocols: u64,
    limits: &ExploreLimits,
    threads: usize,
) -> EnumerationResult {
    let total = OrbitSpace::new(num_states)
        .total_candidates()
        .min(max_protocols as u128);
    let config = PipelineConfig::exact(max_input, limits);
    // One segment per worker is the old static chunking; eight per worker
    // gives the pool something to steal when stage costs are skewed.
    let seg_size = if threads <= 1 {
        total.max(1)
    } else {
        total.div_ceil(threads as u128 * 8)
    };
    let segmentation =
        SegmentationConfig::index_order(u64::try_from(seg_size).unwrap_or(u64::MAX), Some(total));
    let mut search = SegmentedSearch::new(num_states, config, segmentation);
    search.run(threads.max(1), u64::MAX);
    search
        .result()
        .to_enumeration_result(search.space(), max_input)
}

/// Materialises the candidate protocol with encoding index `k` of the
/// `num_states` search space.
///
/// This is the exact decoding the search itself uses (same pair order, same
/// output-bit layout), so bench-harness samples drawn through it see the
/// real candidate space.  Note the pipeline runs its pre-filter on the
/// candidate's *coverable-support restriction* (see
/// [`crate::candidate_pipeline`]), so a full-candidate pre-filter statistic
/// computed on these samples is indicative rather than bit-identical: a cap
/// can bind on the full protocol but not on its smaller restriction.
pub fn decode_candidate(num_states: usize, k: u128) -> Protocol {
    OrbitSpace::new(num_states).protocol_at(k)
}

/// Determines whether the protocol computes `x ≥ η` for some `η` confirmed on
/// all inputs `2 ≤ i ≤ max_input`, and returns that `η`.
///
/// To be confirmed, the verdict sequence must flip from rejecting to
/// accepting strictly below `max_input` (so the flip position is certain) or
/// be all-accepting (η ≤ 2).  Each input slice is explored exactly once (see
/// [`unary_threshold_profile`]).
pub fn verified_threshold(
    protocol: &Protocol,
    max_input: u64,
    limits: &ExploreLimits,
) -> Option<u64> {
    unary_threshold_profile(protocol, max_input, limits).verified_threshold()
}

#[cfg(test)]
mod tests {
    use super::*;
    use popproto_model::{Output, ProtocolBuilder, StateId};
    use popproto_zoo::{binary_counter, flock};

    #[test]
    fn verified_threshold_of_known_protocols() {
        let limits = ExploreLimits::default();
        assert_eq!(verified_threshold(&flock(3), 8, &limits), Some(3));
        assert_eq!(verified_threshold(&binary_counter(2), 8, &limits), Some(4));
        // A protocol that never accepts computes no threshold in range.
        let mut b = ProtocolBuilder::new("never");
        let s = b.add_state("s", Output::False);
        b.set_input_state("x", s);
        let never = b.build().unwrap();
        assert_eq!(verified_threshold(&never, 6, &limits), None);
    }

    #[test]
    fn two_state_busy_beaver_is_two() {
        // With 2 states the best deterministic leaderless protocol decides x ≥ 2
        // (e.g. input state flips both agents to an accepting state on meeting).
        let limits = ExploreLimits::default();
        let result = busy_beaver_search(2, 6, 100_000, &limits);
        assert_eq!(result.best_eta, Some(2));
        assert!(result.threshold_protocols >= 1);
        assert!(
            result.is_exact(),
            "no orbit may be truncated in the exact claim"
        );
        assert_eq!(result.truncated_orbits, 0);
        let witness = result.witness.expect("a witness protocol exists");
        assert_eq!(
            verified_threshold(&witness, 6, &limits),
            Some(2),
            "the reported witness must re-verify"
        );
    }

    #[test]
    fn enumeration_respects_protocol_cap() {
        let limits = ExploreLimits::default();
        let result = busy_beaver_search(2, 5, 10, &limits);
        assert!(result.protocols_examined <= 10);
    }

    #[test]
    fn one_state_protocols_decide_nothing_nontrivial() {
        let limits = ExploreLimits::default();
        let result = busy_beaver_search(1, 5, 1_000, &limits);
        // With one state the output is constant, so no threshold ≥ 2 in the
        // confirmable range is computed... except η = 2?  A single always-true
        // state accepts every input i ≥ 2, which is exactly x ≥ 2 restricted
        // to valid inputs — the search therefore reports 2.
        assert_eq!(result.best_eta, Some(2));
    }

    #[test]
    fn witness_input_state_is_fixed_to_zero() {
        let limits = ExploreLimits::default();
        let result = busy_beaver_search(2, 6, 100_000, &limits);
        let witness = result.witness.unwrap();
        assert_eq!(witness.input_state(0), StateId::new(0));
        // With the input fixed at state 0, the residual relabelling group of
        // a 2-state protocol is trivial: nothing to prune below n = 3.
        assert_eq!(result.pruned_symmetric, 0);
        let capped = busy_beaver_search(3, 4, 2_000, &limits);
        assert!(capped.pruned_symmetric > 0, "3-state orbits must be pruned");
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let limits = ExploreLimits::default();
        let seq = busy_beaver_search_with_threads(2, 6, 100_000, &limits, 1);
        for threads in [2, 3, 8] {
            let par = busy_beaver_search_with_threads(2, 6, 100_000, &limits, threads);
            assert_eq!(par.best_eta, seq.best_eta);
            assert_eq!(par.witness, seq.witness);
            assert_eq!(par.protocols_examined, seq.protocols_examined);
            assert_eq!(par.threshold_protocols, seq.threshold_protocols);
            assert_eq!(par.pruned_symmetric, seq.pruned_symmetric);
            assert_eq!(par.pruned_symbolic, seq.pruned_symbolic);
            assert_eq!(par.pruned_eta_bounded, seq.pruned_eta_bounded);
            assert_eq!(par.truncated_orbits, seq.truncated_orbits);
            // memo_hits is deliberately exempt: worker-local caches see
            // different candidate subsets under different chunkings.
        }
    }

    #[test]
    fn symbolic_prefilter_rejects_candidates_before_exploration() {
        // Already in the 2-state space, many candidates (e.g. every
        // all-output-0 one) are symbolically hopeless: they must be counted
        // as pruned without changing the search outcome.
        let limits = ExploreLimits::default();
        let result = busy_beaver_search(2, 6, 100_000, &limits);
        assert!(
            result.pruned_symbolic > 0,
            "the symbolic pre-filter never fired"
        );
        assert_eq!(result.best_eta, Some(2));
        // The unfloored search never rejects on the η stage.
        assert_eq!(result.pruned_eta_bounded, 0);
    }

    #[test]
    fn truncated_slice_explorations_are_surfaced() {
        // With an absurdly tight exploration cap every profiled candidate's
        // slices truncate: the result must say so instead of silently
        // reporting `best_eta = None` as if it were proven.
        let tight = ExploreLimits::with_max_configs(1);
        let result = busy_beaver_search(2, 6, 100_000, &tight);
        assert!(result.truncated_orbits > 0, "truncation went unreported");
        assert!(!result.is_exact());
        // Candidates with single-configuration slices (e.g. the always-true
        // protocol) still verify exactly even under the cap — only the
        // exactness claim for the *value* is off the table.
        assert_eq!(result.best_eta, Some(2));
    }

    #[test]
    fn canonicality_keeps_exactly_one_representative_per_orbit() {
        // For n = 3 the residual relabelling group (fixing the input state 0)
        // is the swap of states 1 and 2.  Walk the full space, group
        // candidates into orbits by brute force, and check that every orbit
        // contains exactly one canonical member — and that it is the one
        // with the smallest candidate index (the property the capped-prefix
        // equivalence relies on).
        let space = OrbitSpace::new(3);
        let perm = [0usize, 2, 1];
        let num_pairs = space.pairs().len();
        let total = space.total_candidates();
        let choices = space.pairs().len() as u128;
        let mut assignment = vec![0usize; num_pairs];
        let mut relabeled = vec![0usize; num_pairs];
        let mut canonical = 0u128;
        // Only scan a deterministic slice of the 373k-candidate space to keep
        // the test fast; orbits are closed under the swap within any slice
        // plus its image, which we compute explicitly.
        for k in (0..total).step_by(97) {
            space.decode_assignment(k / space.output_patterns(), &mut assignment);
            let outputs = (k % space.output_patterns()) as u32;
            // Compute the orbit partner's index.
            for (i, &(a, b)) in space.pairs().iter().enumerate() {
                let j = space.pair_position(perm[a], perm[b]);
                let (c, d) = space.pairs()[assignment[i]];
                relabeled[j] = space.pair_position(perm[c], perm[d]);
            }
            let mut swapped_outputs = 0u32;
            for (q, &pq) in perm.iter().enumerate() {
                if (outputs >> q) & 1 == 1 {
                    swapped_outputs |= 1 << pq;
                }
            }
            let mut partner_function = 0u128;
            for i in (0..num_pairs).rev() {
                partner_function = partner_function * choices + relabeled[i] as u128;
            }
            let partner = partner_function * space.output_patterns() + swapped_outputs as u128;
            let is_canonical = space.is_canonical(&assignment, outputs, &mut relabeled);
            // Canonical iff this candidate's index is the orbit minimum.
            assert_eq!(
                is_canonical,
                k <= partner,
                "candidate {k} (partner {partner})"
            );
            if is_canonical {
                canonical += 1;
            }
        }
        assert!(canonical > 0);
    }
}
