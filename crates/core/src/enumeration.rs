//! Exact busy-beaver values for tiny state counts, by exhaustive protocol
//! enumeration (experiment E7).
//!
//! The search space of *all* protocols is doubly exponential, so the
//! enumeration restricts itself to a documented fragment:
//!
//! * leaderless protocols with a single input variable,
//! * **deterministic** transition relations (at most one transition per
//!   unordered pair of states, cf. Remark 1),
//! * thresholds confirmed by exhaustive verification of all inputs
//!   `2 ≤ i ≤ max_input`.
//!
//! Within this fragment the computed value `BB_det(n)` is exact (for
//! thresholds below the verification cap); it is a lower bound on the true
//! `BB(n)` because the fragment is a subset of all protocols, and every
//! protocol it reports is a genuine witness.

use popproto_model::{Output, Protocol, ProtocolBuilder, StateId};
use popproto_reach::{verify_unary_threshold, ExploreLimits};
use serde::{Deserialize, Serialize};

/// The result of the exhaustive busy-beaver search for one state count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnumerationResult {
    /// Number of states `n`.
    pub num_states: usize,
    /// The largest verified threshold found (the busy-beaver value of the fragment).
    pub best_eta: Option<u64>,
    /// A protocol witnessing `best_eta`.
    pub witness: Option<Protocol>,
    /// Number of protocols examined.
    pub protocols_examined: u64,
    /// Number of protocols that compute *some* threshold within the cap.
    pub threshold_protocols: u64,
    /// The verification cap used (thresholds are only confirmed up to this input).
    pub max_input: u64,
}

/// Exhaustively searches deterministic leaderless protocols with `num_states`
/// states for the largest verified threshold.
///
/// `max_input` bounds both the inputs verified and the thresholds that can be
/// confirmed (a threshold `η` needs `η + 1 ≤ max_input` to be distinguished
/// from `η + 1`).  `max_protocols` caps the enumeration as a safety net.
pub fn busy_beaver_search(
    num_states: usize,
    max_input: u64,
    max_protocols: u64,
    limits: &ExploreLimits,
) -> EnumerationResult {
    let pairs: Vec<(usize, usize)> = (0..num_states)
        .flat_map(|a| (a..num_states).map(move |b| (a, b)))
        .collect();
    // Each pair maps to one of the possible unordered post pairs (including
    // itself, i.e. a no-op).
    let posts: Vec<(usize, usize)> = pairs.clone();
    let num_pairs = pairs.len();
    let choices = posts.len() as u64;

    let mut result = EnumerationResult {
        num_states,
        best_eta: None,
        witness: None,
        protocols_examined: 0,
        threshold_protocols: 0,
        max_input,
    };

    // Iterate over all transition functions pair -> post (choices^num_pairs),
    // all output assignments, and all input-state choices.
    let total_functions = (choices as u128).pow(num_pairs as u32);
    let mut function_index: u128 = 0;
    while function_index < total_functions {
        if result.protocols_examined >= max_protocols {
            break;
        }
        // Decode the transition function.
        let mut assignment = Vec::with_capacity(num_pairs);
        let mut rest = function_index;
        for _ in 0..num_pairs {
            assignment.push((rest % choices as u128) as usize);
            rest /= choices as u128;
        }
        for outputs in 0..(1u32 << num_states) {
            for input_state in 0..num_states {
                if result.protocols_examined >= max_protocols {
                    break;
                }
                result.protocols_examined += 1;
                let protocol =
                    build_candidate(num_states, &pairs, &posts, &assignment, outputs, input_state);
                if let Some(eta) = verified_threshold(&protocol, max_input, limits) {
                    result.threshold_protocols += 1;
                    if result.best_eta.is_none_or(|best| eta > best) {
                        result.best_eta = Some(eta);
                        result.witness = Some(protocol);
                    }
                }
            }
        }
        function_index += 1;
    }
    result
}

fn build_candidate(
    num_states: usize,
    pairs: &[(usize, usize)],
    posts: &[(usize, usize)],
    assignment: &[usize],
    outputs: u32,
    input_state: usize,
) -> Protocol {
    let mut b = ProtocolBuilder::new(format!("enum-{num_states}"));
    let states: Vec<StateId> = (0..num_states)
        .map(|i| {
            b.add_state(
                format!("s{i}"),
                Output::from_bool((outputs >> i) & 1 == 1),
            )
        })
        .collect();
    for (pair, &post_idx) in pairs.iter().zip(assignment) {
        let post = posts[post_idx];
        if *pair == post {
            continue; // implicit no-op
        }
        b.add_transition_idempotent(
            (states[pair.0], states[pair.1]),
            (states[post.0], states[post.1]),
        )
        .expect("states were just declared");
    }
    b.set_input_state("x", states[input_state]);
    b.build().expect("candidate construction is well-formed")
}

/// Determines whether the protocol computes `x ≥ η` for some `η` confirmed on
/// all inputs `2 ≤ i ≤ max_input`, and returns that `η`.
///
/// To be confirmed, the verdict sequence must flip from rejecting to
/// accepting strictly below `max_input` (so the flip position is certain) or
/// be all-accepting (η ≤ 2).
pub fn verified_threshold(
    protocol: &Protocol,
    max_input: u64,
    limits: &ExploreLimits,
) -> Option<u64> {
    // Fast scan: find the candidate flip point by checking correctness
    // against every plausible threshold, cheapest first.
    for eta in 2..=max_input {
        let report = verify_unary_threshold(protocol, eta, max_input, limits);
        if report.all_correct() && report.all_exhaustive() {
            // Only confirmed if the flip is strictly inside the verified range.
            if eta < max_input {
                return Some(eta);
            }
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use popproto_zoo::{binary_counter, flock};

    #[test]
    fn verified_threshold_of_known_protocols() {
        let limits = ExploreLimits::default();
        assert_eq!(verified_threshold(&flock(3), 8, &limits), Some(3));
        assert_eq!(verified_threshold(&binary_counter(2), 8, &limits), Some(4));
        // A protocol that never accepts computes no threshold in range.
        let mut b = ProtocolBuilder::new("never");
        let s = b.add_state("s", Output::False);
        b.set_input_state("x", s);
        let never = b.build().unwrap();
        assert_eq!(verified_threshold(&never, 6, &limits), None);
    }

    #[test]
    fn two_state_busy_beaver_is_two() {
        // With 2 states the best deterministic leaderless protocol decides x ≥ 2
        // (e.g. input state flips both agents to an accepting state on meeting).
        let limits = ExploreLimits::default();
        let result = busy_beaver_search(2, 6, 100_000, &limits);
        assert_eq!(result.best_eta, Some(2));
        assert!(result.threshold_protocols >= 1);
        let witness = result.witness.expect("a witness protocol exists");
        assert_eq!(
            verified_threshold(&witness, 6, &limits),
            Some(2),
            "the reported witness must re-verify"
        );
    }

    #[test]
    fn enumeration_respects_protocol_cap() {
        let limits = ExploreLimits::default();
        let result = busy_beaver_search(2, 5, 10, &limits);
        assert!(result.protocols_examined <= 10);
    }

    #[test]
    fn one_state_protocols_decide_nothing_nontrivial() {
        let limits = ExploreLimits::default();
        let result = busy_beaver_search(1, 5, 1_000, &limits);
        // With one state the output is constant, so no threshold ≥ 2 in the
        // confirmable range is computed... except η = 2?  A single always-true
        // state accepts every input i ≥ 2, which is exactly x ≥ 2 restricted
        // to valid inputs — the search therefore reports 2.
        assert_eq!(result.best_eta, Some(2));
    }
}
