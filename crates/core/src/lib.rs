//! State complexity of population protocols — an executable reproduction of
//! *"Lower Bounds on the State Complexity of Population Protocols"*
//! (Philipp Czerner, Javier Esparza, Jérôme Leroux; PODC 2021,
//! arXiv:2102.11619).
//!
//! The paper studies the number of states needed by population protocols to
//! decide the counting predicates `x ≥ η`, through the *busy beaver*
//! functions `BB(n)` (leaderless) and `BBL(n)` (with leaders): the largest
//! `η` decidable with `n` states.  Its results are
//!
//! * `BB(n), BBL(n) ∈ Ω(2^n)` resp. `Ω(2^(2^n))` (prior work, Theorem 2.2),
//! * `BBL(n)` is bounded by a function at level `F_ω` of the Fast-Growing
//!   Hierarchy (Theorem 4.5), and
//! * `BB(n) ≤ ξ·n·β·3^n ≤ 2^((2n+2)!)` for leaderless protocols
//!   (Theorem 5.9), i.e. the state complexity of `x ≥ η` is `Ω(log log η)`.
//!
//! This crate turns the paper's definitions, constants and proof pipeline
//! into executable artefacts:
//!
//! * [`constants`] — the small-basis constant `β`, the basis-size bound
//!   `ϑ(n)` and the Theorem 5.9 bound, computed exactly or as magnitudes;
//! * [`ackermann_bound`] — the Theorem 4.5 bound for protocols with leaders;
//! * [`busy_beaver`] — the busy-beaver framing and the witness families for
//!   the lower bounds;
//! * [`certificate`] — the pumping certificates of Lemma 4.1, with exact
//!   verification on bounded slices and a Dickson-style search procedure;
//! * [`saturation`] — the Lemma 5.3/5.4 analysis (reaching 1-saturated
//!   configurations) compared against the `3^n` bound;
//! * [`concentration`] — ε-concentration and the Lemma 5.8 search for
//!   0-concentrated potentially realisable multisets;
//! * [`pipeline`] — the end-to-end Section 5 analysis of a leaderless
//!   protocol (Lemma 5.2 certificate assembly, Theorem 5.9 comparison);
//! * [`orbit_stream`] — the streaming generator of canonical busy-beaver
//!   candidates: lazy, splittable into deterministic work ranges, and
//!   checkpointable for multi-session searches;
//! * [`candidate_pipeline`] — the staged triage funnel (symbolic
//!   pre-filter, η-floor filter, concrete slices) with cross-candidate
//!   memoization and the resumable
//!   [`StreamingSearch`](candidate_pipeline::StreamingSearch);
//! * [`segmented`] — parallel segmented streaming: deterministic `u128`
//!   segments on the [`popproto_exec`] work-stealing pool, a shared
//!   cross-segment transposition table, ordered segment merges and
//!   multi-cursor checkpoints that resume on any worker count;
//! * [`enumeration`] — exact busy-beaver values for tiny state counts by
//!   exhaustive protocol enumeration (under documented restrictions),
//!   driving the generator + pipeline over the segmented search;
//! * [`experiments`] — the E1–E10 experiment drivers behind EXPERIMENTS.md
//!   and the benchmark harness;
//! * [`report`] — plain-text/markdown rendering of experiment results.
//!
//! # Quick start
//!
//! ```
//! use popproto::prelude::*;
//!
//! // The succinct protocol P'_3 decides x ≥ 8 with 5 states.
//! let protocol = popproto_zoo::binary_counter(3);
//! let report = verify_unary_threshold(&protocol, 8, 12, &ExploreLimits::default());
//! assert!(report.all_correct());
//!
//! // The paper's Theorem 5.9 bound for 5 states, as an order of magnitude.
//! let bound = constants::theorem_5_9_simple_bound(5);
//! assert!(bound.log2_approx().unwrap() > 1e8); // 2^(12!) is gigantic
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ackermann_bound;
pub mod busy_beaver;
pub mod candidate_pipeline;
pub mod certificate;
pub mod concentration;
pub mod constants;
pub mod enumeration;
pub mod experiments;
pub mod orbit_stream;
pub mod pipeline;
pub mod report;
pub mod saturation;
pub mod segmented;

/// Convenience re-exports of the most commonly used items across the
/// workspace crates.
pub mod prelude {
    pub use crate::busy_beaver::{BusyBeaverRecord, WitnessFamily};
    pub use crate::certificate::{search_pumping_certificate, PumpingCertificate};
    pub use crate::constants;
    pub use crate::pipeline::{analyze_leaderless_protocol, LeaderlessAnalysis};
    pub use popproto_model::{
        Config, Input, Output, Predicate, Protocol, ProtocolBuilder, StateId,
    };
    pub use popproto_reach::{verify_unary_threshold, ExploreLimits};
    pub use popproto_sim::Simulator;
}
