//! The busy beaver framing (Definition 1) and the witness families for the
//! lower bounds of Theorem 2.2.
//!
//! `BB(n)` is the largest `η` such that some leaderless protocol with at most
//! `n` states computes `x ≥ η`; `BBL(n)` allows leaders.  Blondin et al.
//! showed `BB(n) ∈ Ω(2^n)` and `BBL(n) ∈ Ω(2^(2^n))`.  The binary-counter
//! family `P'_k` realises the leaderless bound; this module produces and
//! (optionally) verifies the witness records that experiment E1 tabulates.
//!
//! The doubly-exponential `BBL` witness of Blondin et al. is not reproduced
//! (see DESIGN.md); the leader-assisted counter documents what the
//! protocols-with-leaders code path achieves in this repository.

use popproto_model::Protocol;
use popproto_reach::{verify_unary_threshold, ExploreLimits};
use popproto_zoo::{
    binary_counter, binary_counter::binary_counter_threshold, flock, leader_counter,
};
use serde::{Deserialize, Serialize};

/// The protocol family a busy-beaver record belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WitnessFamily {
    /// The flock protocol `P_η` (Example 2.1): `η + 1` states.
    Flock,
    /// The succinct counter `P'_k` (Example 2.1): `k + 2` states for `η = 2^k`.
    BinaryCounter,
    /// The leader-assisted counter: `3k + 2` states and `k` leaders for `η = 2^k`.
    LeaderCounter,
}

/// A lower-bound record: "a protocol with this many states decides `x ≥ η`".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BusyBeaverRecord {
    /// The family the witness protocol belongs to.
    pub family: WitnessFamily,
    /// The family parameter (`η` for flock, `k` for the counters).
    pub parameter: u64,
    /// Number of states of the witness protocol.
    pub states: usize,
    /// Number of leader agents.
    pub leaders: u64,
    /// The threshold `η` decided by the protocol.
    pub eta: u64,
    /// `Some(true)` if the protocol was verified correct on all inputs up to
    /// the verification bound, `Some(false)` if a failure was found, `None`
    /// if verification was skipped (e.g. the slice would be too large).
    pub verified: Option<bool>,
}

impl BusyBeaverRecord {
    /// Builds the witness protocol this record describes.
    pub fn build_protocol(&self) -> Protocol {
        match self.family {
            WitnessFamily::Flock => flock(self.parameter),
            WitnessFamily::BinaryCounter => binary_counter(self.parameter as u32),
            WitnessFamily::LeaderCounter => leader_counter(self.parameter as u32),
        }
    }

    /// The base-2 logarithm of the threshold per state — the "succinctness
    /// rate" that experiment E1 tabulates (`≈ 1` for an optimal `Ω(2^n)` witness).
    pub fn log2_eta_per_state(&self) -> f64 {
        (self.eta as f64).log2() / self.states as f64
    }
}

/// Produces (and optionally verifies) one record of the given family.
///
/// Verification checks all inputs `2 ≤ i ≤ η + margin` exhaustively and is
/// skipped (`verified = None`) when `η` exceeds `verify_up_to_eta`.
pub fn witness_record(
    family: WitnessFamily,
    parameter: u64,
    verify_up_to_eta: u64,
    limits: &ExploreLimits,
) -> BusyBeaverRecord {
    let (protocol, eta) = match family {
        WitnessFamily::Flock => (flock(parameter), parameter),
        WitnessFamily::BinaryCounter => (
            binary_counter(parameter as u32),
            binary_counter_threshold(parameter as u32),
        ),
        WitnessFamily::LeaderCounter => (
            leader_counter(parameter as u32),
            binary_counter_threshold(parameter as u32),
        ),
    };
    let verified = if eta <= verify_up_to_eta {
        let report = verify_unary_threshold(&protocol, eta, eta + 3, limits);
        Some(report.all_correct() && report.all_exhaustive())
    } else {
        None
    };
    BusyBeaverRecord {
        family,
        parameter,
        states: protocol.num_states(),
        leaders: protocol.leaders().size(),
        eta,
        verified,
    }
}

/// The witness table of experiment E1: flock and binary-counter records up to
/// the given parameters, plus leader-counter records.
pub fn lower_bound_witnesses(
    max_flock_eta: u64,
    max_counter_k: u64,
    max_leader_k: u64,
    verify_up_to_eta: u64,
    limits: &ExploreLimits,
) -> Vec<BusyBeaverRecord> {
    let mut records = Vec::new();
    for eta in 2..=max_flock_eta {
        records.push(witness_record(
            WitnessFamily::Flock,
            eta,
            verify_up_to_eta,
            limits,
        ));
    }
    for k in 1..=max_counter_k {
        records.push(witness_record(
            WitnessFamily::BinaryCounter,
            k,
            verify_up_to_eta,
            limits,
        ));
    }
    for k in 1..=max_leader_k {
        records.push(witness_record(
            WitnessFamily::LeaderCounter,
            k,
            verify_up_to_eta,
            limits,
        ));
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_counter_records_are_verified_and_exponential() {
        let limits = ExploreLimits::default();
        for k in 1..=3u64 {
            let r = witness_record(WitnessFamily::BinaryCounter, k, 16, &limits);
            assert_eq!(r.states as u64, k + 2);
            assert_eq!(r.eta, 1 << k);
            assert_eq!(r.verified, Some(true), "P'_{k} must verify");
            assert_eq!(r.leaders, 0);
        }
    }

    #[test]
    fn flock_records_are_verified_but_not_succinct() {
        let limits = ExploreLimits::default();
        let r = witness_record(WitnessFamily::Flock, 4, 16, &limits);
        assert_eq!(r.states, 5);
        assert_eq!(r.eta, 4);
        assert_eq!(r.verified, Some(true));
        // The binary counter for the same threshold uses fewer states and
        // therefore has a better succinctness rate.
        let counter = witness_record(WitnessFamily::BinaryCounter, 2, 16, &limits);
        assert!(counter.log2_eta_per_state() > r.log2_eta_per_state());
    }

    #[test]
    fn leader_counter_records_report_leaders() {
        let limits = ExploreLimits::default();
        let r = witness_record(WitnessFamily::LeaderCounter, 2, 8, &limits);
        assert_eq!(r.leaders, 2);
        assert_eq!(r.eta, 4);
        assert_eq!(
            r.verified,
            Some(true),
            "the leader counter must verify for k = 2"
        );
    }

    #[test]
    fn verification_is_skipped_above_the_cap() {
        let limits = ExploreLimits::default();
        let r = witness_record(WitnessFamily::BinaryCounter, 6, 16, &limits);
        assert_eq!(r.eta, 64);
        assert_eq!(r.verified, None);
    }

    #[test]
    fn witness_table_shape() {
        let limits = ExploreLimits::default();
        let table = lower_bound_witnesses(4, 3, 2, 8, &limits);
        assert_eq!(table.len(), 3 + 3 + 2);
        assert!(table.iter().all(|r| r.eta >= 2));
        // Every record can rebuild its protocol with the recorded state count.
        for r in &table {
            assert_eq!(r.build_protocol().num_states(), r.states);
        }
    }
}
