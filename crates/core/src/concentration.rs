//! ε-concentration (Definition 5) and the Lemma 5.8 search for 0-concentrated
//! potentially realisable multisets.
//!
//! Lemma 5.8 turns an ε-concentrated stable configuration into a *potential*
//! execution that is perfectly concentrated: if some potentially realisable
//! multiset reaches a configuration that is `(1/ξ)`-concentrated in `S`, then
//! some *small* potentially realisable multiset `θ` (with `|θ| ≤ ξ/2`) reaches
//! a configuration entirely inside `N^S`.  The executable version searches the
//! Hilbert basis of the realisability system for such a `θ` directly.

use popproto_model::{Config, Protocol, StateId};
use popproto_vas::{HilbertOptions, ParikhImage, RealisabilitySystem};
use serde::{Deserialize, Serialize};

/// A 0-concentrated potential execution: `IC(input) =π⇒ target` with
/// `target ∈ N^S`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConcentratedMultiset {
    /// The multiset of transitions `θ`.
    pub parikh: ParikhImage,
    /// The smallest input realising the displacement.
    pub input: u64,
    /// The configuration reached, supported entirely inside the target set `S`.
    pub target: Config,
}

/// Result of the Lemma 5.8 search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConcentrationReport {
    /// The target set `S` (states allowed to be populated).
    pub target_states: Vec<StateId>,
    /// The Pottier bound `ξ/2` on the size of the multiset the lemma promises.
    pub pottier_half_bound: u64,
    /// Whether the Hilbert-basis computation completed.
    pub basis_complete: bool,
    /// The 0-concentrated multiset found, if any.
    pub found: Option<ConcentratedMultiset>,
}

/// Searches the Hilbert basis of the potentially-realisable-multiset system
/// for an element whose minimal realisation is 0-concentrated in `target_states`
/// and consumes at least one input agent.
pub fn find_zero_concentrated_multiset(
    protocol: &Protocol,
    target_states: &[StateId],
    options: &HilbertOptions,
) -> ConcentrationReport {
    let system = RealisabilitySystem::new(protocol);
    let basis = system.basis(options);
    let mut found = None;
    for solution in &basis.solutions {
        let pi = ParikhImage::from_counts(solution.clone());
        if let Some((input, config)) = system.minimal_realisation(protocol, &pi) {
            if input == 0 {
                continue; // pumping needs at least one fresh input agent
            }
            let zero_concentrated = config.iter().all(|(q, _)| target_states.contains(&q));
            if zero_concentrated {
                let better = match &found {
                    None => true,
                    Some(ConcentratedMultiset { parikh, .. }) => pi.size() < parikh.size(),
                };
                if better {
                    found = Some(ConcentratedMultiset {
                        parikh: pi,
                        input,
                        target: config,
                    });
                }
            }
        }
    }
    ConcentrationReport {
        target_states: target_states.to_vec(),
        pottier_half_bound: system.pottier_bound_u64(),
        basis_complete: basis.complete,
        found,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popproto_model::Output;
    use popproto_zoo::{binary_counter, flock};

    #[test]
    fn flock_has_a_concentrated_multiset_into_the_accepting_state() {
        let p = flock(3);
        // Target set: the accepting state {3} (the ω-set of the 1-stable basis).
        let accepting = p.states_with_output(Output::True);
        let report = find_zero_concentrated_multiset(&p, &accepting, &HilbertOptions::default());
        assert!(report.basis_complete);
        let found = report.found.expect("a concentrated multiset exists");
        assert!(found.input >= 1);
        assert!(found.target.iter().all(|(q, _)| accepting.contains(&q)));
        // Lemma 5.8 / Corollary 5.7: the multiset respects the Pottier bound.
        assert!(found.parikh.size() <= report.pottier_half_bound);
        // And the realisation is consistent with the Parikh displacement.
        let ic = p.initial_config_unary(found.input);
        assert_eq!(found.parikh.apply(&p, &ic), Some(found.target.clone()));
    }

    #[test]
    fn binary_counter_concentrates_into_the_top_state() {
        let p = binary_counter(2);
        let accepting = p.states_with_output(Output::True);
        let report = find_zero_concentrated_multiset(&p, &accepting, &HilbertOptions::default());
        assert!(report.basis_complete);
        let found = report.found.expect("a concentrated multiset exists");
        // Note: *potential* realisability ignores enabledness along the way,
        // so a single conversion transition (2^0, 2^2 ↦ 2^2, 2^2) already
        // yields a 0-concentrated displacement from one input agent.
        assert!(found.input >= 1);
        assert!(found.parikh.size() <= report.pottier_half_bound);
        assert!(found.target.iter().all(|(q, _)| accepting.contains(&q)));
    }

    #[test]
    fn empty_target_set_yields_nothing() {
        let p = flock(3);
        let report = find_zero_concentrated_multiset(&p, &[], &HilbertOptions::default());
        assert!(report.found.is_none());
    }

    #[test]
    fn rejecting_state_zero_is_a_trivial_target() {
        // The flock state 0 can absorb arbitrarily many agents... but a
        // potential execution moving everything into {0} does not exist,
        // because agent values are conserved until the threshold fires.
        let p = flock(3);
        let zero = p.state_by_name("0").unwrap();
        let report = find_zero_concentrated_multiset(&p, &[zero], &HilbertOptions::default());
        assert!(report.found.is_none());
    }
}
