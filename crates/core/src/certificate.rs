//! Pumping certificates in the style of Lemma 4.1, with exact verification on
//! bounded slices and a Dickson-style search procedure (Lemma 4.2 + 4.3).
//!
//! Lemma 4.1 gives a sufficient condition for `η ≤ a`: if `IC(a)` reaches a
//! configuration `C` lying in a basis element `(B, S)` of `SC`, and some
//! additional agents `b·x` can reach a configuration `D_b ∈ N^S`, then
//! pumping shows that the protocol treats `a`, `a+b`, `a+2b`, … alike, so a
//! protocol for `x ≥ η` must already accept at `a`.
//!
//! An executable certificate replaces the two ingredients that quantify over
//! infinitely many configurations with checks of increasing strength:
//!
//! * the reachability conditions are verified **exactly** on their slices;
//! * the condition `B + N^S ⊆ SC_b` cannot be checked exhaustively; the
//!   verifier instead checks b-stability of `C`, of `C + D_b` and of
//!   `C + λ·D_b` for `λ ≤ pump_depth` (each check being itself exact on its
//!   slice) and records how deep it went.
//!
//! The search procedure mirrors Lemma 4.2: it builds the chain
//! `C_2, C_3, C_4, …` of stable configurations with `IC(i) →* C_i` and
//! `C_i + x →* C_{i+1}`, and applies Dickson's lemma to find the ordered pair
//! that yields the certificate.

use popproto_model::{Config, Output, Protocol};
use popproto_reach::{is_stable_config, ExploreLimits, ReachabilityGraph, StableSets};
use serde::{Deserialize, Serialize};

/// A pumping certificate for "any threshold computed by this protocol is at
/// most `a`" (Lemma 4.1, executable form).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PumpingCertificate {
    /// The anchor input `a`.
    pub a: u64,
    /// The pumping increment `b ≥ 1`.
    pub b: u64,
    /// The stable configuration reached from `IC(a)` (the `B + D_a` of the lemma).
    pub anchor: Config,
    /// The pumping difference `D_b` (support contained in the `ω`-set `S`).
    pub increment: Config,
    /// The common output of the anchor and its pumped variants.
    pub output: Output,
}

/// The result of verifying a [`PumpingCertificate`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CertificateCheck {
    /// `IC(a) →* anchor`, verified exactly.
    pub reach_anchor: bool,
    /// `anchor + b·x →* anchor + increment`, verified exactly.
    pub reach_increment: bool,
    /// b-stability of `anchor + λ·increment` for `λ = 0, 1, …, pump_depth`,
    /// each verified exactly on its slice.
    pub stability_depth_checked: u64,
    /// `true` if all stability checks up to the requested depth passed.
    pub stable: bool,
}

impl CertificateCheck {
    /// `true` if every performed check passed.
    pub fn all_passed(&self) -> bool {
        self.reach_anchor && self.reach_increment && self.stable
    }
}

impl PumpingCertificate {
    /// Verifies the certificate against the protocol.
    ///
    /// `pump_depth` controls how many pumped configurations
    /// `anchor + λ·increment` are checked for stability (λ up to this value).
    pub fn verify(
        &self,
        protocol: &Protocol,
        pump_depth: u64,
        limits: &ExploreLimits,
    ) -> CertificateCheck {
        // (1) IC(a) →* anchor.
        let ic = protocol.initial_config_unary(self.a);
        let graph = ReachabilityGraph::explore(protocol, &[ic], limits);
        let reach_anchor = graph.id_of(&self.anchor).is_some();

        // (2) anchor + b·x →* anchor + increment.
        let x_state = protocol.input_state(0);
        let mut source = self.anchor.clone();
        source.add(x_state, self.b);
        let target = self.anchor.plus(&self.increment);
        let graph2 = ReachabilityGraph::explore(protocol, &[source], limits);
        let reach_increment = graph2.id_of(&target).is_some();

        // (3) stability of the pumped configurations.
        let mut stable = true;
        let mut depth_checked = 0;
        for lambda in 0..=pump_depth {
            let pumped = self.anchor.plus(&self.increment.scaled(lambda));
            match is_stable_config(protocol, &pumped, self.output, limits) {
                Some(true) => depth_checked = lambda,
                _ => {
                    stable = false;
                    break;
                }
            }
        }
        CertificateCheck {
            reach_anchor,
            reach_increment,
            stability_depth_checked: depth_checked,
            stable,
        }
    }

    /// The bound the certificate implies: if the protocol computes `x ≥ η`
    /// and the certificate verifies with output 0, then `η ≤ a`; with output
    /// 1 the protocol already accepts at `a`, so `η ≤ a` as well.
    pub fn implied_bound(&self) -> u64 {
        self.a
    }
}

/// The Lemma 4.2 chain: stable configurations `C_i` with `IC(i) →* C_i` and
/// `C_i + x →* C_{i+1}`.
pub fn stable_chain(
    protocol: &Protocol,
    max_input: u64,
    limits: &ExploreLimits,
) -> Vec<(u64, Config, Output)> {
    let mut chain: Vec<(u64, Config, Output)> = Vec::new();
    let mut previous: Option<Config> = None;
    for i in 2..=max_input {
        let start = match &previous {
            None => protocol.initial_config_unary(i),
            Some(c) => {
                let mut next = c.clone();
                next.add(protocol.input_state(0), 1);
                next
            }
        };
        let graph = ReachabilityGraph::explore(protocol, &[start], limits);
        if !graph.is_complete() {
            break;
        }
        let stable = StableSets::compute(protocol, &graph);
        // Pick a stable configuration reachable from the start.  Terminal
        // (silent) configurations are preferred: they are the most
        // "concentrated" stable configurations and give the best chance that
        // the Dickson pair found later is pump-stable.
        let classify = |id: u32| {
            if stable.is_stable(id, Output::False) {
                Some((id, Output::False))
            } else if stable.is_stable(id, Output::True) {
                Some((id, Output::True))
            } else {
                None
            }
        };
        let pick = graph
            .terminal_ids()
            .into_iter()
            .find_map(classify)
            .or_else(|| graph.ids().find_map(classify));
        match pick {
            Some((id, output)) => {
                let c = graph.config(id);
                previous = Some(c.clone());
                chain.push((i, c, output));
            }
            None => break,
        }
    }
    chain
}

/// Searches for a pumping certificate by the Lemma 4.2/4.3 recipe: build the
/// stable chain, look for Dickson pairs `C_k ≤ C_ℓ` *with the same output*,
/// and keep the first pair whose pumped configurations pass the stability
/// checks (the executable stand-in for "both lie in a common basis element
/// `(B, S)` of `SC`").
///
/// Returns `None` if no such pair exists within `max_input` (or the chain
/// could not be built).
pub fn search_pumping_certificate(
    protocol: &Protocol,
    max_input: u64,
    limits: &ExploreLimits,
) -> Option<PumpingCertificate> {
    let chain = stable_chain(protocol, max_input, limits);
    if chain.len() < 2 {
        return None;
    }
    // Group by output: a pumping pair must stay within one output class.
    for target_output in [Output::False, Output::True] {
        let filtered: Vec<&(u64, Config, Output)> = chain
            .iter()
            .filter(|(_, _, o)| *o == target_output)
            .collect();
        for l in 1..filtered.len() {
            for k in 0..l {
                let (a, anchor, _) = filtered[k];
                let (a2, bigger, _) = filtered[l];
                if !anchor.le(bigger) {
                    continue;
                }
                let increment = bigger
                    .checked_minus(anchor)
                    .expect("the pair is ordered, so the difference exists");
                if increment.is_empty() {
                    continue;
                }
                let candidate = PumpingCertificate {
                    a: *a,
                    b: a2 - a,
                    anchor: anchor.clone(),
                    increment,
                    output: target_output,
                };
                // Reject pairs whose pumped configurations leave the stable
                // class — those are ordered pairs that do not lie in a common
                // basis element of SC.
                if candidate.pump_stable(protocol, 3, limits) {
                    return Some(candidate);
                }
            }
        }
    }
    None
}

impl PumpingCertificate {
    /// Checks b-stability of `anchor + λ·increment` for `λ ≤ depth` (a
    /// lightweight subset of [`PumpingCertificate::verify`]).
    pub fn pump_stable(&self, protocol: &Protocol, depth: u64, limits: &ExploreLimits) -> bool {
        (0..=depth).all(|lambda| {
            let pumped = self.anchor.plus(&self.increment.scaled(lambda));
            is_stable_config(protocol, &pumped, self.output, limits) == Some(true)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popproto_zoo::{binary_counter, flock};

    #[test]
    fn stable_chain_of_flock() {
        let p = flock(3);
        let chain = stable_chain(&p, 8, &ExploreLimits::default());
        assert!(chain.len() >= 6);
        // Inputs below the threshold yield 0-stable configurations, inputs
        // above yield 1-stable ones.
        for (i, _, output) in &chain {
            if *i >= 3 {
                assert_eq!(*output, Output::True, "input {i} must stabilise to 1");
            } else {
                assert_eq!(*output, Output::False, "input {i} must stabilise to 0");
            }
        }
    }

    #[test]
    fn certificate_found_for_binary_counter() {
        let p = binary_counter(2); // x ≥ 4
        let limits = ExploreLimits::default();
        let cert = search_pumping_certificate(&p, 12, &limits).expect("certificate exists");
        // The pumping anchor must be at least the true threshold when the
        // pair lies in the accepting class, or witness the rejecting class;
        // in both cases it bounds η from above.
        assert!(cert.implied_bound() >= 2);
        assert!(cert.b >= 1);
        let check = cert.verify(&p, 3, &limits);
        assert!(check.reach_anchor, "IC(a) must reach the anchor");
        assert!(
            check.reach_increment,
            "anchor + b·x must reach anchor + increment"
        );
        assert!(check.stable, "pumped configurations must stay stable");
        assert!(check.all_passed());
    }

    #[test]
    fn certificate_bound_dominates_true_threshold() {
        // For a correct protocol computing x ≥ η, any *accepting* pumping
        // anchor is ≥ η; here η = 4.
        let p = binary_counter(2);
        let limits = ExploreLimits::default();
        let cert = search_pumping_certificate(&p, 12, &limits).unwrap();
        if cert.output == Output::True {
            assert!(cert.implied_bound() >= 4);
        } else {
            assert!(cert.implied_bound() < 4);
        }
    }

    #[test]
    fn verification_rejects_bogus_certificates() {
        let p = binary_counter(2);
        let limits = ExploreLimits::default();
        // A bogus anchor that is not reachable from IC(2).
        let bogus = PumpingCertificate {
            a: 2,
            b: 1,
            anchor: Config::from_counts(vec![0, 0, 0, 2]),
            increment: Config::from_counts(vec![1, 0, 0, 0]),
            output: Output::True,
        };
        let check = bogus.verify(&p, 2, &limits);
        assert!(!check.reach_anchor);
        assert!(!check.all_passed());
    }

    #[test]
    fn flock_certificates_verify_too() {
        let p = flock(3);
        let limits = ExploreLimits::default();
        let cert = search_pumping_certificate(&p, 10, &limits).expect("certificate exists");
        let check = cert.verify(&p, 2, &limits);
        assert!(check.all_passed());
    }
}
