//! The experiment drivers E1–E10 behind EXPERIMENTS.md and the benchmark
//! harness.
//!
//! The paper has no tables or figures (it is a theory paper); each experiment
//! instead makes one of its quantitative claims executable.  Every driver
//! returns a serialisable report and is exercised both by the integration
//! tests (small parameters) and by the Criterion benches in
//! `crates/bench` (larger parameters).

use crate::ackermann_bound::{theorem_4_5_bound, AckermannBound};
use crate::busy_beaver::{lower_bound_witnesses, BusyBeaverRecord};
use crate::candidate_pipeline::{
    PipelineConfig, PipelineStats, ReachEngine, SearchCheckpoint, StreamingSearch,
};
use crate::certificate::{search_pumping_certificate, PumpingCertificate};
use crate::concentration::{find_zero_concentrated_multiset, ConcentrationReport};
use crate::constants::small_basis_constant;
use crate::enumeration::{busy_beaver_search, EnumerationResult};
use crate::orbit_stream::{SegmentOrder, U128Parts};
use crate::pipeline::{analyze_leaderless_protocol, LeaderlessAnalysis, PipelineOptions};
use crate::saturation::{analyze_saturation, SaturationAnalysis};
use crate::segmented::{SegmentationConfig, SegmentedSearch};
use popproto_model::{Input, Output, Protocol};
use popproto_numerics::Magnitude;
use popproto_reach::{extract_stable_basis, unary_threshold_profile, ExploreLimits};
use popproto_sim::{run_experiment, EngineKind, SimulationExperiment};
use popproto_symbolic::{SymbolicLimits, SymbolicVerifier, ThresholdVerdict};
use popproto_vas::{longest_bad_sequence, ControlledSearch, HilbertOptions, RealisabilitySystem};
use popproto_zoo::{approximate_majority, binary_counter, catalog, flock, modulo};
use serde::{Deserialize, Serialize};

/// E1 — busy beaver witness families (Theorem 2.2 / Example 2.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E1Report {
    /// The witness records (states, threshold, verification status).
    pub records: Vec<BusyBeaverRecord>,
}

/// Runs E1 with the given family caps.
pub fn experiment_e1(
    max_flock_eta: u64,
    max_counter_k: u64,
    max_leader_k: u64,
    verify_up_to_eta: u64,
) -> E1Report {
    E1Report {
        records: lower_bound_witnesses(
            max_flock_eta,
            max_counter_k,
            max_leader_k,
            verify_up_to_eta,
            &ExploreLimits::default(),
        ),
    }
}

/// One row of the E2 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E2Row {
    /// Protocol analysed.
    pub protocol: String,
    /// Output class of the stable set analysed.
    pub output: Output,
    /// Empirical norm of the extracted basis.
    pub empirical_norm: u64,
    /// Number of basis elements extracted.
    pub elements: usize,
    /// Whether all stability spot-checks passed.
    pub verified: bool,
    /// The paper's bound β for this protocol's state count (as a magnitude).
    pub beta: Magnitude,
}

/// E2 — small bases of stable sets (Lemma 3.2): empirical norm vs β.
///
/// The truncation threshold 2 is enough for the zoo protocols' rejecting
/// stable sets (whose per-state counts are bounded by the threshold minus
/// one) while still producing ω-states for the states that genuinely grow.
pub fn experiment_e2(protocols: &[Protocol], slice_size: u64) -> Vec<E2Row> {
    let limits = ExploreLimits::default();
    let mut rows = Vec::new();
    for p in protocols {
        for output in [Output::False, Output::True] {
            let basis = extract_stable_basis(p, output, slice_size, 2, &limits);
            rows.push(E2Row {
                protocol: p.name().to_string(),
                output,
                empirical_norm: basis.max_norm(),
                elements: basis.elements.len(),
                verified: basis.verified,
                beta: small_basis_constant(p.num_states()),
            });
        }
    }
    rows
}

/// One row of the E3 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E3Row {
    /// Protocol analysed.
    pub protocol: String,
    /// The true threshold the protocol computes.
    pub true_eta: u64,
    /// The pumping certificate found (Lemma 4.1 search).
    pub certificate: Option<PumpingCertificate>,
    /// The Theorem 4.5 ingredients for this protocol.
    pub ackermann_bound: AckermannBound,
}

/// E3 — Lemma 4.1/4.2 pumping certificates and the Theorem 4.5 bound.
pub fn experiment_e3(instances: &[(Protocol, u64)], max_input: u64) -> Vec<E3Row> {
    let limits = ExploreLimits::default();
    instances
        .iter()
        .map(|(p, eta)| E3Row {
            protocol: p.name().to_string(),
            true_eta: *eta,
            certificate: search_pumping_certificate(p, max_input, &limits),
            ackermann_bound: theorem_4_5_bound(p),
        })
        .collect()
}

/// One row of the E4 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E4Row {
    /// Protocol analysed.
    pub protocol: String,
    /// The saturation analysis (empirical input vs `3^n`).
    pub analysis: SaturationAnalysis,
}

/// E4 — reaching 1-saturated configurations (Lemma 5.4) vs the `3^n` bound.
pub fn experiment_e4(protocols: &[Protocol], max_input: u64) -> Vec<E4Row> {
    let limits = ExploreLimits::default();
    protocols
        .iter()
        .map(|p| E4Row {
            protocol: p.name().to_string(),
            analysis: analyze_saturation(p, max_input, &limits),
        })
        .collect()
}

/// One row of the E5 / E9 reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E5Row {
    /// Protocol analysed.
    pub protocol: String,
    /// Number of transitions.
    pub transitions: usize,
    /// Whether the Hilbert-basis computation completed.
    pub complete: bool,
    /// Number of generators found.
    pub basis_size: usize,
    /// Largest 1-norm over the generators.
    pub max_norm: u64,
    /// The Pottier bound ξ/2.
    pub pottier_half_bound: u64,
    /// The Pottier constant for deterministic protocols (Remark 1), if applicable.
    pub deterministic_bound: Option<u64>,
}

/// E5/E9 — Hilbert bases of potentially realisable multisets vs Pottier's bound.
pub fn experiment_e5(protocols: &[Protocol]) -> Vec<E5Row> {
    let options = HilbertOptions::default();
    protocols
        .iter()
        .map(|p| {
            let system = RealisabilitySystem::new(p);
            let basis = system.basis(&options);
            E5Row {
                protocol: p.name().to_string(),
                transitions: p.num_transitions(),
                complete: basis.complete,
                basis_size: basis.len(),
                max_norm: basis.max_norm1(),
                pottier_half_bound: system.pottier_bound_u64(),
                deterministic_bound: if p.is_deterministic() {
                    popproto_vas::pottier_constant_deterministic(p)
                        .to_u64()
                        .map(|v| v / 2)
                } else {
                    None
                },
            }
        })
        .collect()
}

/// One row of the E6 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E6Row {
    /// The true threshold of the analysed protocol.
    pub true_eta: u64,
    /// The full pipeline analysis.
    pub analysis: LeaderlessAnalysis,
}

/// E6 — the Section 5 pipeline (Lemma 5.2 + Theorem 5.9) on leaderless protocols.
pub fn experiment_e6(instances: &[(Protocol, u64)], options: &PipelineOptions) -> Vec<E6Row> {
    instances
        .iter()
        .map(|(p, eta)| E6Row {
            true_eta: *eta,
            analysis: analyze_leaderless_protocol(p, options),
        })
        .collect()
}

/// E7 — exact busy-beaver search for tiny state counts.
pub fn experiment_e7(
    max_states: usize,
    max_input: u64,
    max_protocols: u64,
) -> Vec<EnumerationResult> {
    let limits = ExploreLimits::default();
    (1..=max_states)
        .map(|n| busy_beaver_search(n, max_input, max_protocols, &limits))
        .collect()
}

/// One row of the E8 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E8Row {
    /// Protocol simulated.
    pub protocol: String,
    /// Number of agents.
    pub population: u64,
    /// Number of runs.
    pub runs: usize,
    /// How many runs converged.
    pub converged: usize,
    /// Mean parallel time to convergence.
    pub mean_parallel_time: f64,
}

/// E8 — expected parallel convergence time of the zoo families (simulation),
/// on the exact sequential engine.
pub fn experiment_e8(populations: &[u64], runs: u64, max_interactions: u64) -> Vec<E8Row> {
    experiment_e8_with_engine(populations, runs, max_interactions, EngineKind::Sequential)
}

/// E8 with an explicit engine choice.  [`EngineKind::Batched`] makes
/// populations of 10⁶–10⁹ agents tractable (the sequential engine must
/// simulate every single interaction, the batched one processes Θ(√n)
/// interactions per O(|Q|²) batch).
pub fn experiment_e8_with_engine(
    populations: &[u64],
    runs: u64,
    max_interactions: u64,
    engine: EngineKind,
) -> Vec<E8Row> {
    let mut rows = Vec::new();
    for &n in populations {
        for protocol in [flock(4), binary_counter(3), modulo(3, 1)] {
            let exp = SimulationExperiment::new(
                protocol.clone(),
                Input::unary(n),
                runs,
                max_interactions,
            )
            .with_engine(engine);
            let result = run_experiment(&exp);
            rows.push(E8Row {
                protocol: protocol.name().to_string(),
                population: n,
                runs: result.stats.runs,
                converged: result.stats.converged_runs,
                mean_parallel_time: result.stats.parallel_time.mean,
            });
        }
    }
    rows
}

/// E8 at scale — the batched engine at populations up to 10⁸ agents
/// (closing the ROADMAP item "E8 at n ∈ {10⁶, 10⁸} with the batched engine
/// in the experiment reports").
///
/// Only protocols whose parallel convergence time is sublinear in `n` are
/// meaningful at these populations: the threshold families of the
/// small-scale E8 stabilise only after Θ(n) parallel time (the last few
/// tokens need Θ(n²) interactions to meet), which no engine can shortcut.
/// Approximate majority converges in O(log n) parallel time, so the batched
/// engine drives it to silence in seconds even at 10⁸ agents; the input is
/// split 2:1 between the two opinions.
pub fn experiment_e8_large(populations: &[u64], runs: u64) -> Vec<E8Row> {
    let mut rows = Vec::new();
    for &n in populations {
        let protocol = approximate_majority();
        let input = Input::from_counts(vec![2 * n / 3, n - 2 * n / 3]);
        let exp = SimulationExperiment::new(protocol.clone(), input, runs, u64::MAX)
            .with_engine(EngineKind::Batched);
        let result = run_experiment(&exp);
        rows.push(E8Row {
            protocol: protocol.name().to_string(),
            population: n,
            runs: result.stats.runs,
            converged: result.stats.converged_runs,
            mean_parallel_time: result.stats.parallel_time.mean,
        });
    }
    rows
}

/// One row of the E11 report: the symbolic all-`n` verdict of a zoo
/// threshold protocol, cross-checked against the enumerative per-slice
/// verdicts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SymbolicRow {
    /// Protocol analysed.
    pub protocol: String,
    /// The threshold the protocol is supposed to compute.
    pub eta: u64,
    /// The all-`n` verdict of the [`SymbolicVerifier`].
    pub verdict: ThresholdVerdict,
    /// Number of Karp–Miller labels generated for the ω-cover.
    pub cover_labels: usize,
    /// Ideals in the canonical cover representation.
    pub cover_ideals: usize,
    /// Size of the backward-coverability basis behind `SC_1` (0 if the
    /// stable set was unavailable).
    pub sc1_basis: usize,
    /// Ideals in the symbolic `SC_1` representation.
    pub sc1_ideals: usize,
    /// Rounds of the silencing certificate, if one was found.
    pub silencing_rounds: Option<usize>,
    /// Whether the symbolic verdict agrees with the enumerative per-slice
    /// verdicts up to [`SymbolicRow::enumerative_checked_up_to`]; `None`
    /// when the verdict was inconclusive and there was nothing to
    /// cross-check against.
    pub matches_enumerative: Option<bool>,
    /// Largest input whose slice was enumeratively cross-checked.
    pub enumerative_checked_up_to: u64,
}

/// E11 — symbolic vs enumerative verification on the zoo threshold
/// protocols: an all-`n` verdict per protocol, cross-checked slice by slice
/// up to `max_slice_input`.
pub fn experiment_symbolic(max_slice_input: u64) -> Vec<SymbolicRow> {
    let limits = SymbolicLimits::default();
    let explore = ExploreLimits::default();
    let mut rows = Vec::new();
    for instance in catalog() {
        let Some(eta) = instance.predicate.as_unary_threshold() else {
            continue; // majority/modulo are not threshold predicates
        };
        let p = &instance.protocol;
        let verifier = SymbolicVerifier::analyze(p, &limits);
        let verdict = verifier.certify_threshold(eta);
        let profile = unary_threshold_profile(p, max_slice_input, &explore);
        // Compare the profiled slices against the η pattern directly rather
        // than through `supports`: the profiler short-circuits (conclusive =
        // false) as soon as no threshold *in its own window* remains
        // feasible, which happens legitimately when η ≥ max_slice_input and
        // every slice rejects — the slices still agree with η.
        let consistent = profile
            .inputs
            .iter()
            .all(|p| p.exhaustive && if p.input >= eta { p.accepts } else { p.rejects });
        let matches_enumerative = match &verdict {
            ThresholdVerdict::CertifiedAllN { .. } => Some(consistent),
            ThresholdVerdict::Refuted {
                failing_input: Some(i),
                ..
            } if *i <= max_slice_input => Some(!consistent),
            // All-thresholds refutations speak about arbitrarily large
            // inputs; bounded slices cannot cross-check them.
            ThresholdVerdict::Refuted { .. } | ThresholdVerdict::Inconclusive { .. } => None,
        };
        let (sc1_basis, sc1_ideals) = verifier
            .stable_set(Output::True)
            .map(|s| (s.basis_size, s.set.len()))
            .unwrap_or((0, 0));
        rows.push(SymbolicRow {
            protocol: p.name().to_string(),
            eta,
            verdict,
            cover_labels: verifier.cover().labels,
            cover_ideals: verifier.cover().set.len(),
            sc1_basis,
            sc1_ideals,
            silencing_rounds: verifier.silencing_certificate().map(|c| c.num_rounds()),
            matches_enumerative,
            enumerative_checked_up_to: profile.inputs.last().map(|p| p.input).unwrap_or(1),
        });
    }
    rows
}

/// The E12 report: a streaming, staged, resumable prefix of the `BB_det(4)`
/// search.
///
/// The 4-state space has ~10¹⁰ relabelling orbits — it can only be searched
/// in checkpointed sessions.  E12 streams a fixed budget of canonical
/// orbits through the full triage pipeline (symbolic pre-filter → η-floor
/// filter → concrete slices on the frontier engine) and reports the
/// per-stage rejection funnel.  `best_eta` is exact *for the streamed
/// prefix* whenever no orbit was truncated; the η floor of 3 is sound
/// because `BB_det(4) ≥ BB_det(3) = 3` (monotonicity: pad a 3-state witness
/// with an isolated state).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E12Report {
    /// State count of the candidate space (4).
    pub num_states: usize,
    /// Verification horizon for the concrete slices.
    pub max_input: u64,
    /// The η floor the pipeline pruned against.
    pub eta_floor: u64,
    /// Canonical orbits requested.
    pub orbit_budget: u64,
    /// The per-stage funnel counters.
    pub stats: PipelineStats,
    /// Best threshold confirmed within the streamed prefix (only counts
    /// candidates that could beat the floor).
    pub best_eta: Option<u64>,
    /// Distinct coverable-support restrictions in the transposition table.
    pub memo_entries: u64,
    /// Candidate encodings consumed (canonical or not).
    pub candidates_consumed: u64,
    /// `true` if the whole space was exhausted within the budget (never at
    /// realistic budgets).
    pub finished: bool,
}

/// Builds the pipeline configuration E12 runs with: η floor 3, frontier
/// exploration engine, memoization on.
pub fn e12_pipeline_config(max_input: u64) -> PipelineConfig {
    let mut config = PipelineConfig::exact(max_input, &ExploreLimits::default());
    config.eta_floor = 3;
    config.engine = ReachEngine::Frontier;
    config
}

/// E12 — the `BB_det(4)` prefix search: streams the first `orbit_budget`
/// canonical 4-state orbits through the staged pipeline in one session.
pub fn experiment_e12_bb4_prefix(orbit_budget: u64, max_input: u64) -> E12Report {
    let mut search = StreamingSearch::new(4, e12_pipeline_config(max_input));
    search.run_for(orbit_budget);
    e12_report_from(&search, orbit_budget)
}

/// Continues an E12 search from a serialised checkpoint for another
/// `orbit_budget` orbits, returning the report so far and the next
/// checkpoint.  This is the multi-session entry point: kill the process
/// after any burst, persist the checkpoint, resume later — the stats are
/// bit-identical to an uninterrupted run.
pub fn experiment_e12_resume(
    checkpoint: &SearchCheckpoint,
    orbit_budget: u64,
) -> (E12Report, SearchCheckpoint) {
    let mut search = StreamingSearch::from_checkpoint(checkpoint);
    search.run_for(orbit_budget);
    let report = e12_report_from(&search, checkpoint.stats.canonical_orbits + orbit_budget);
    let next = search.checkpoint();
    (report, next)
}

/// Assembles the E12 report from a (possibly resumed) streaming search.
pub fn e12_report_from(search: &StreamingSearch, orbit_budget: u64) -> E12Report {
    let result = search.result();
    E12Report {
        num_states: result.num_states,
        max_input: result.max_input,
        eta_floor: search.config().eta_floor,
        orbit_budget,
        stats: search.stats(),
        best_eta: result.best_eta,
        memo_entries: search.memo_len() as u64,
        candidates_consumed: result.protocols_examined,
        finished: search.is_finished(),
    }
}

/// The E12 *parallel segmented* report: the same staged `BB_det(4)` prefix
/// funnel, but streamed as deterministic segments over the
/// [work-stealing pool](popproto_exec) with a shared cross-segment
/// transposition table and an ordered segment merge.
///
/// Everything here except [`PipelineStats::memo_hits_cross`] is
/// bit-identical for every worker count (the property suite pins it); the
/// `order` field records which [`SegmentOrder`] chose the prefix — an
/// `"entropy"` prefix contains *different* (non-degenerate-first) orbits
/// than an `"index"` prefix of the same budget, which is the point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E12SegmentedReport {
    /// State count of the candidate space (4).
    pub num_states: usize,
    /// Verification horizon for the concrete slices.
    pub max_input: u64,
    /// The η floor the pipeline pruned against.
    pub eta_floor: u64,
    /// Canonical orbits requested (the merge cut).
    pub orbit_budget: u64,
    /// Workers the run used (diagnostic — results do not depend on it).
    pub workers: u64,
    /// Candidate encodings per segment.
    pub segment_size: u64,
    /// `"index"` or `"entropy"` — the segment visit order.
    pub order: String,
    /// Segments in the merged prefix.
    pub segments_merged: u64,
    /// The merged per-stage funnel counters of the prefix.
    pub stats: PipelineStats,
    /// Best threshold confirmed within the merged prefix.
    pub best_eta: Option<u64>,
    /// Encoding indices of every confirmed threshold protocol in the
    /// prefix, sorted — the witness set.
    pub confirmed: Vec<U128Parts>,
    /// Entries in the shared cross-segment transposition table.
    pub shared_memo_entries: u64,
    /// Candidate encodings consumed by the merged prefix.
    pub candidates_consumed: u64,
    /// Canonical orbits in the merged prefix (≥ the budget unless the plan
    /// ran out).
    pub prefix_orbits: u64,
    /// `true` if the whole segment plan was merged.
    pub finished: bool,
}

/// The segmentation E12 runs with: 16Ki-candidate segments (≈ 5.4k canonical
/// orbits each — fine-grained enough for the pool to steal) over the first
/// 2²⁸ encodings of the 4-state space (16384 segments — far deeper than any
/// realistic orbit budget) in the given visit order.
pub fn e12_segmentation(order: SegmentOrder) -> SegmentationConfig {
    SegmentationConfig {
        segment_size: 1 << 14,
        range_end: Some(U128Parts::from(1u128 << 28)),
        order,
    }
}

/// Builds the segmented E12 search (η floor 3, frontier engine, shared
/// memo) without running it — the bench harness drives bursts and
/// checkpoints through it directly.
pub fn e12_segmented_search(max_input: u64, order: SegmentOrder) -> SegmentedSearch {
    SegmentedSearch::new(4, e12_pipeline_config(max_input), e12_segmentation(order))
}

/// Assembles the parallel E12 report from a segmented search.
pub fn e12_segmented_report_from(
    search: &SegmentedSearch,
    orbit_budget: u64,
    workers: usize,
) -> E12SegmentedReport {
    let result = search.result();
    E12SegmentedReport {
        num_states: result.num_states,
        max_input: search.config().max_input,
        eta_floor: search.config().eta_floor,
        orbit_budget,
        workers: workers as u64,
        segment_size: search.segmentation().segment_size,
        order: match search.segmentation_order() {
            SegmentOrder::Index => "index".to_string(),
            SegmentOrder::EntropyDescending => "entropy".to_string(),
        },
        segments_merged: result.segments_merged as u64,
        best_eta: result.best.map(|b| b.eta),
        confirmed: result.confirmed.iter().map(|&c| c.into()).collect(),
        shared_memo_entries: search.shared_memo_len() as u64,
        candidates_consumed: u64::try_from(result.candidates_consumed).unwrap_or(u64::MAX),
        prefix_orbits: result.prefix_orbits,
        finished: result.finished,
        stats: result.stats,
    }
}

/// E12, parallel segmented — streams the `BB_det(4)` prefix through the
/// staged pipeline as work-stealing segments until the ordered merge holds
/// `orbit_budget` canonical orbits.
pub fn experiment_e12_segmented(
    orbit_budget: u64,
    max_input: u64,
    workers: usize,
    order: SegmentOrder,
) -> E12SegmentedReport {
    let mut search = e12_segmented_search(max_input, order);
    search.run(workers, orbit_budget);
    e12_segmented_report_from(&search, orbit_budget, workers)
}

/// One row of the E10 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct E10Row {
    /// Dimension of the vectors.
    pub dimension: usize,
    /// Control offset δ.
    pub delta: u64,
    /// Length of the longest controlled bad sequence found.
    pub length: usize,
    /// Whether the search was exhaustive.
    pub exact: bool,
}

/// E10 — lengths of controlled bad sequences (Lemma 4.4) in small dimension.
pub fn experiment_e10(max_dimension: usize, max_delta: u64, node_budget: u64) -> Vec<E10Row> {
    let mut rows = Vec::new();
    for dim in 1..=max_dimension {
        for delta in 0..=max_delta {
            let mut search = ControlledSearch::new(dim, delta);
            search.node_budget = node_budget;
            let result = longest_bad_sequence(&search);
            rows.push(E10Row {
                dimension: dim,
                delta,
                length: result.len(),
                exact: result.exact,
            });
        }
    }
    rows
}

/// E6 companion: the Lemma 5.8 concentration search on its own (also used by E5).
pub fn experiment_concentration(protocol: &Protocol) -> ConcentrationReport {
    let accepting = protocol.states_with_output(Output::True);
    find_zero_concentrated_multiset(protocol, &accepting, &HilbertOptions::default())
}

/// A convenience bundle used by the `state_complexity_report` example: runs
/// every experiment at small scale.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FullReport {
    /// E1 — witness families.
    pub e1: E1Report,
    /// E2 — stable-set bases.
    pub e2: Vec<E2Row>,
    /// E3 — pumping certificates.
    pub e3: Vec<E3Row>,
    /// E4 — saturation.
    pub e4: Vec<E4Row>,
    /// E5 — Pottier bases.
    pub e5: Vec<E5Row>,
    /// E6 — leaderless pipeline.
    pub e6: Vec<E6Row>,
    /// E7 — exact enumeration.
    pub e7: Vec<EnumerationResult>,
    /// E8 — simulation runtimes.
    pub e8: Vec<E8Row>,
    /// E8 at scale — batched engine at large populations.
    pub e8_large: Vec<E8Row>,
    /// E10 — controlled bad sequences.
    pub e10: Vec<E10Row>,
    /// E11 — symbolic all-`n` verdicts vs enumerative slices.
    pub symbolic: Vec<SymbolicRow>,
    /// E12 — the streamed `BB_det(4)` prefix funnel.
    pub e12: E12Report,
    /// E12, parallel segmented — the same funnel on the work-stealing pool
    /// with an entropy-guided segment order.
    pub e12_parallel: E12SegmentedReport,
}

/// Runs every experiment at a small, test-friendly scale.
pub fn run_all_small() -> FullReport {
    let small: Vec<Protocol> = vec![flock(3), binary_counter(2)];
    let with_eta: Vec<(Protocol, u64)> = vec![(flock(3), 3), (binary_counter(2), 4)];
    FullReport {
        e1: experiment_e1(4, 3, 2, 8),
        e2: experiment_e2(&small, 4),
        e3: experiment_e3(&with_eta, 10),
        e4: experiment_e4(&small, 20),
        e5: experiment_e5(&small),
        e6: experiment_e6(&with_eta, &PipelineOptions::default()),
        e7: experiment_e7(2, 6, 5_000),
        e8: experiment_e8(&[16, 32], 3, 200_000),
        e8_large: experiment_e8_large(&[100_000], 2),
        e10: experiment_e10(2, 2, 200_000),
        symbolic: experiment_symbolic(8),
        e12: experiment_e12_bb4_prefix(2_000, 6),
        e12_parallel: experiment_e12_segmented(500, 6, 2, SegmentOrder::EntropyDescending),
    }
}

/// Like [`run_all_small`] but with the E8 large-population rows at their
/// headline scale, n ∈ {10⁶, 10⁸} (used by the report example; takes a few
/// seconds of wall clock on the batched engine).
pub fn run_all_with_large_e8() -> FullReport {
    let mut report = run_all_small();
    report.e8_large = experiment_e8_large(&[1_000_000, 100_000_000], 2);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_small() {
        let report = experiment_e1(3, 2, 1, 8);
        assert_eq!(report.records.len(), 2 + 2 + 1);
        assert!(report.records.iter().all(|r| r.verified != Some(false)));
    }

    #[test]
    fn e2_norms_are_tiny_compared_to_beta() {
        let rows = experiment_e2(&[flock(3)], 4);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(Magnitude::from_u64(row.empirical_norm.max(1)) < row.beta);
        }
    }

    #[test]
    fn e5_respects_pottier() {
        let rows = experiment_e5(&[flock(3), binary_counter(2)]);
        for row in &rows {
            assert!(row.complete);
            assert!(row.max_norm <= row.pottier_half_bound);
        }
    }

    #[test]
    fn e10_lengths_grow_with_dimension() {
        let rows = experiment_e10(2, 2, 500_000);
        let len = |dim: usize, delta: u64| {
            rows.iter()
                .find(|r| r.dimension == dim && r.delta == delta)
                .unwrap()
                .length
        };
        assert_eq!(len(1, 2), 3);
        assert!(len(2, 2) > len(1, 2));
    }

    #[test]
    fn symbolic_experiment_certifies_the_threshold_zoo() {
        let rows = experiment_symbolic(8);
        // flock(3), flock(5), binary_counter(2), binary_counter(3),
        // leader_counter(2) are the threshold instances of the catalog.
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(
                row.verdict.is_certified(),
                "{} (η = {}): {:?}",
                row.protocol,
                row.eta,
                row.verdict
            );
            assert_eq!(
                row.matches_enumerative,
                Some(true),
                "{} disagrees",
                row.protocol
            );
            assert!(row.silencing_rounds.is_some());
            assert!(row.sc1_ideals >= 1);
        }
    }

    #[test]
    fn e12_prefix_streams_the_requested_budget() {
        let report = experiment_e12_bb4_prefix(1_500, 6);
        assert_eq!(report.num_states, 4);
        assert_eq!(report.eta_floor, 3);
        assert_eq!(report.stats.canonical_orbits, 1_500);
        assert!(!report.finished);
        assert!(report.candidates_consumed >= 1_500);
        // The funnel accounts for every canonical orbit.
        let s = &report.stats;
        assert_eq!(
            s.pruned_symbolic + s.pruned_eta_bounded + s.profiled,
            s.canonical_orbits
        );
        assert!(
            s.memo_hits > 0,
            "the early 4-state space must share restrictions"
        );
        assert_eq!(s.truncated_orbits, 0);
    }

    #[test]
    fn e12_checkpoint_resume_reproduces_the_stats() {
        let straight = experiment_e12_bb4_prefix(1_200, 6);
        // Same budget, split across three sessions through serialised
        // checkpoints.
        let mut search = StreamingSearch::new(4, e12_pipeline_config(6));
        search.run_for(400);
        let json = serde_json::to_string(&search.checkpoint()).unwrap();
        let cp: SearchCheckpoint = serde_json::from_str(&json).unwrap();
        let (_, cp) = experiment_e12_resume(&cp, 500);
        let json = serde_json::to_string(&cp).unwrap();
        let cp: SearchCheckpoint = serde_json::from_str(&json).unwrap();
        let (resumed, _) = experiment_e12_resume(&cp, 300);
        assert_eq!(resumed.stats, straight.stats, "stats must be bit-identical");
        assert_eq!(resumed.best_eta, straight.best_eta);
        assert_eq!(resumed.memo_entries, straight.memo_entries);
        assert_eq!(resumed.candidates_consumed, straight.candidates_consumed);
    }

    #[test]
    fn e12_segmented_matches_the_sequential_stream_on_the_same_range() {
        // The segmented search at several worker counts must reproduce the
        // sequential StreamingSearch bit for bit on the same orbit prefix
        // (the acceptance gate of the parallel rebuild, at test scale).
        let budget = 800u64;
        let segmented = experiment_e12_segmented(budget, 6, 2, SegmentOrder::Index);
        assert!(segmented.prefix_orbits >= budget);
        // Sequential reference over the exact same orbit count.
        let mut reference = StreamingSearch::new(4, e12_pipeline_config(6));
        reference.run_for(segmented.prefix_orbits);
        let ref_stats = reference.stats();
        assert_eq!(segmented.stats.canonical_orbits, ref_stats.canonical_orbits);
        // The prefix scans its last segment to the boundary, the sequential
        // stream stops at the budget-th orbit: `pruned_symmetric` differs by
        // exactly that (deterministic) non-canonical tail, so compare it
        // through the consumption identity instead of bit for bit.
        assert_eq!(
            segmented.stats.pruned_symmetric + segmented.stats.canonical_orbits,
            segmented.candidates_consumed,
        );
        assert_eq!(segmented.stats.pruned_symbolic, ref_stats.pruned_symbolic);
        assert_eq!(
            segmented.stats.pruned_eta_bounded,
            ref_stats.pruned_eta_bounded
        );
        assert_eq!(segmented.stats.profiled, ref_stats.profiled);
        assert_eq!(
            segmented.stats.threshold_protocols,
            ref_stats.threshold_protocols
        );
        assert_eq!(segmented.stats.truncated_orbits, ref_stats.truncated_orbits);
        assert_eq!(segmented.best_eta, reference.result().best_eta);
        let ref_confirmed: Vec<u64> = reference
            .confirmed()
            .iter()
            .map(|&c| u64::try_from(c).unwrap())
            .collect();
        let seg_confirmed: Vec<u64> = segmented
            .confirmed
            .iter()
            .map(|c| u64::try_from(c.get()).unwrap())
            .collect();
        assert_eq!(seg_confirmed, ref_confirmed, "witness sets differ");
    }

    #[test]
    fn e12_entropy_order_profiles_earlier_than_index_order() {
        // The entropy-guided prefix must surface non-degenerate candidates
        // (ones that survive to the concrete-slice stage) at a higher rate
        // than the degenerate-heavy index prefix.
        let budget = 400u64;
        let index = experiment_e12_segmented(budget, 6, 1, SegmentOrder::Index);
        let entropy = experiment_e12_segmented(budget, 6, 1, SegmentOrder::EntropyDescending);
        assert_eq!(entropy.order, "entropy");
        assert!(
            entropy.stats.profiled + entropy.stats.pruned_eta_bounded
                > index.stats.profiled + index.stats.pruned_eta_bounded,
            "entropy prefix ({} survived stage 1) must beat index prefix ({})",
            entropy.stats.profiled + entropy.stats.pruned_eta_bounded,
            index.stats.profiled + index.stats.pruned_eta_bounded,
        );
    }

    #[test]
    fn e8_reports_converged_runs() {
        let rows = experiment_e8(&[12], 2, 200_000);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.converged, row.runs, "{} must converge", row.protocol);
            assert!(row.mean_parallel_time > 0.0);
        }
    }

    #[test]
    fn e8_large_converges_on_the_batched_engine() {
        let rows = experiment_e8_large(&[10_000, 50_000], 2);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.protocol, "approximate_majority");
            assert_eq!(row.converged, row.runs);
            assert!(row.mean_parallel_time > 0.0);
        }
        // Convergence is polylogarithmic: the parallel time grows far slower
        // than the population.
        assert!(rows[1].mean_parallel_time < rows[0].mean_parallel_time * 10.0);
    }

    #[test]
    fn e8_runs_on_the_batched_engine() {
        let rows = experiment_e8_with_engine(&[2_000], 2, u64::MAX, EngineKind::Batched);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.converged, row.runs, "{} must converge", row.protocol);
            assert!(row.mean_parallel_time > 0.0);
        }
    }
}
