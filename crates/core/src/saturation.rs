//! The Lemma 5.3/5.4 analysis: how large an input is needed to reach a
//! 1-saturated configuration, compared against the `3^n` bound.

use popproto_model::Protocol;
use popproto_numerics::saturating_pow_u64;
use popproto_reach::{min_input_for_saturation, ExploreLimits, SaturationWitness};
use serde::{Deserialize, Serialize};

/// The outcome of the saturation analysis of a protocol.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SaturationAnalysis {
    /// Number of states `n`.
    pub num_states: usize,
    /// The Lemma 5.4 bound `3^n` on both the input and the word length.
    pub bound_3n: u64,
    /// The witness actually found (smallest input, shortest word), if any
    /// within the search caps.
    pub witness: Option<SaturationWitness>,
    /// `true` if the witness respects the Lemma 5.4 bound (trivially true
    /// when the bound exceeds the search cap and a witness was found).
    pub within_bound: bool,
}

/// Runs the saturation analysis: find the smallest input reaching a
/// 1-saturated configuration and compare it with `3^n`.
///
/// `max_input` caps the search (exploration is exhaustive per input).
pub fn analyze_saturation(
    protocol: &Protocol,
    max_input: u64,
    limits: &ExploreLimits,
) -> SaturationAnalysis {
    let n = protocol.num_states();
    let bound = saturating_pow_u64(3, n as u32);
    let witness = min_input_for_saturation(protocol, 1, max_input, limits);
    let within_bound = witness
        .as_ref()
        .map(|w| w.input <= bound && (w.path_length as u64) <= bound)
        .unwrap_or(false);
    SaturationAnalysis {
        num_states: n,
        bound_3n: bound,
        witness,
        within_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popproto_zoo::{binary_counter, flock};

    #[test]
    fn binary_counter_saturates_well_below_the_bound() {
        let p = binary_counter(2); // 4 states, bound 81
        let analysis = analyze_saturation(&p, 30, &ExploreLimits::default());
        assert_eq!(analysis.bound_3n, 81);
        let w = analysis.witness.expect("the binary counter saturates");
        assert!(w.input < 81);
        assert!(analysis.within_bound);
    }

    #[test]
    fn flock_saturation() {
        let p = flock(3); // 4 states
        let analysis = analyze_saturation(&p, 30, &ExploreLimits::default());
        let w = analysis.witness.expect("the flock protocol saturates");
        assert!(w.config.is_saturated(1));
        assert!(analysis.within_bound);
        // Reaching all of {0, 1, 2, 3} needs at least 4 agents.
        assert!(w.input >= 4);
    }

    #[test]
    fn saturation_without_witness_reports_failure() {
        let p = binary_counter(3); // needs ~15 agents, but we cap the search at 5
        let analysis = analyze_saturation(&p, 5, &ExploreLimits::default());
        assert!(analysis.witness.is_none());
        assert!(!analysis.within_bound);
    }
}
