//! The streaming generator layer of the busy-beaver pipeline: a lazy
//! iterator over **canonical orbit representatives** of the deterministic
//! candidate space.
//!
//! The previous search walked the encoded candidate space eagerly inside its
//! scan loop; that is fine while a worker's range fits in one pass, but the
//! 4-state space has ~10¹⁰ relabelling orbits — it can neither be
//! materialised nor finished in one sitting.  This module splits the
//! *generation* of canonical candidates from their *triage*
//! ([`CandidatePipeline`](crate::candidate_pipeline::CandidatePipeline)):
//!
//! * [`OrbitSpace`] describes the encoded space of one state count — the
//!   unordered state pairs, the candidate indexing (little-endian base-`|P|`
//!   transition assignment, then the output bits) and the relabelling group
//!   fixing the input state 0;
//! * [`OrbitStream`] walks any index range `[start, end)` lazily, yielding
//!   exactly the candidates whose encoding index is minimal within their
//!   orbit, in increasing index order — the same set, in the same order, as
//!   a full materialised scan (a property-tested invariant);
//! * [`StreamCursor`] checkpoints a stream between any two yields: the
//!   serialisable cursor restarts the stream bit-identically, which is what
//!   makes the multi-session `BB_det(4)` prefix search resumable.
//!
//! Candidate indices are `u128` (the 4-state space alone has `10¹⁰·16`
//! encodings); the vendored serde stack has no native `u128`, so cursors
//! store indices as explicit [`U128Parts`].

use popproto_model::{Output, Protocol, ProtocolBuilder, StateId};
use serde::{Deserialize, Serialize};

/// A `u128` split into two `u64` halves for serialisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct U128Parts {
    /// The high 64 bits.
    pub hi: u64,
    /// The low 64 bits.
    pub lo: u64,
}

impl From<u128> for U128Parts {
    fn from(v: u128) -> Self {
        U128Parts {
            hi: (v >> 64) as u64,
            lo: v as u64,
        }
    }
}

impl U128Parts {
    /// Reassembles the `u128`.
    pub fn get(self) -> u128 {
        ((self.hi as u128) << 64) | self.lo as u128
    }
}

/// Static description of the deterministic candidate space for one state
/// count: every protocol over states `0..n` with at most one transition per
/// unordered state pair, input state fixed to 0.
///
/// A candidate index `k` decodes as `k = f · 2ⁿ + outputs` where `outputs`
/// is the accepting-state bitmask and `f` is the little-endian base-`|P|`
/// number whose `i`-th digit names the post pair of pre pair `i` (`|P| =
/// n(n+1)/2` unordered pairs, digit `i` = pair `i` itself meaning "no
/// transition").
#[derive(Debug, Clone)]
pub struct OrbitSpace {
    num_states: usize,
    /// Unordered pairs `(a, b)` with `a ≤ b`, in enumeration order; also the
    /// list of possible post pairs (a transition maps a pair to a pair).
    pairs: Vec<(usize, usize)>,
    /// `pair_index[a][b]` = position of `⦃a, b⦄` in `pairs` (symmetric).
    pair_index: Vec<Vec<usize>>,
    /// Non-identity permutations of `0..num_states` fixing state 0.
    perms: Vec<Vec<usize>>,
    /// Number of post choices per pair (= `pairs.len()`).
    choices: u128,
    /// Number of output assignments (= `2^num_states`).
    output_patterns: u128,
}

impl OrbitSpace {
    /// Builds the space description for `num_states` states.
    pub fn new(num_states: usize) -> Self {
        let pairs: Vec<(usize, usize)> = (0..num_states)
            .flat_map(|a| (a..num_states).map(move |b| (a, b)))
            .collect();
        let mut pair_index = vec![vec![0usize; num_states]; num_states];
        for (i, &(a, b)) in pairs.iter().enumerate() {
            pair_index[a][b] = i;
            pair_index[b][a] = i;
        }
        let perms = permutations_fixing_zero(num_states);
        OrbitSpace {
            num_states,
            choices: pairs.len() as u128,
            output_patterns: 1u128 << num_states,
            pairs,
            pair_index,
            perms,
        }
    }

    /// The state count of every candidate.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The unordered state pairs in enumeration order.
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// Position of the unordered pair `⦃a, b⦄` in [`OrbitSpace::pairs`].
    pub fn pair_position(&self, a: usize, b: usize) -> usize {
        self.pair_index[a][b]
    }

    /// Number of output bitmask patterns (`2^num_states`).
    pub fn output_patterns(&self) -> u128 {
        self.output_patterns
    }

    /// Total number of candidate encodings: `|P|^|P| · 2^n`.
    pub fn total_candidates(&self) -> u128 {
        self.choices
            .checked_pow(self.pairs.len() as u32)
            .and_then(|f| f.checked_mul(self.output_patterns))
            .unwrap_or(u128::MAX)
    }

    /// Decodes the transition-assignment digits of `function_index` into
    /// `assignment` (one post-pair choice per pre pair).
    pub fn decode_assignment(&self, mut function_index: u128, assignment: &mut [usize]) {
        for slot in assignment.iter_mut() {
            *slot = (function_index % self.choices) as usize;
            function_index /= self.choices;
        }
    }

    /// Returns `true` if `(assignment, outputs)` has the smallest encoding
    /// index within its orbit under state relabellings fixing state 0.
    ///
    /// `relabeled` is caller-provided scratch of length `pairs().len()`.
    pub fn is_canonical(
        &self,
        assignment: &[usize],
        outputs: u32,
        relabeled: &mut [usize],
    ) -> bool {
        'perms: for perm in &self.perms {
            for (i, &(a, b)) in self.pairs.iter().enumerate() {
                let j = self.pair_index[perm[a]][perm[b]];
                let (c, d) = self.pairs[assignment[i]];
                relabeled[j] = self.pair_index[perm[c]][perm[d]];
            }
            let mut relabeled_outputs = 0u32;
            for (q, &pq) in perm.iter().enumerate() {
                if (outputs >> q) & 1 == 1 {
                    relabeled_outputs |= 1 << pq;
                }
            }
            // Compare (relabeled, relabeled_outputs) against (assignment,
            // outputs) in candidate-index order: the function index is the
            // little-endian number with digits `assignment[i]` in base
            // `choices` (most significant digit last), then the outputs.
            for i in (0..assignment.len()).rev() {
                if relabeled[i] < assignment[i] {
                    return false;
                }
                if relabeled[i] > assignment[i] {
                    continue 'perms;
                }
            }
            if relabeled_outputs < outputs {
                return false;
            }
        }
        true
    }

    /// Materialises the candidate protocol with encoding index `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside the candidate space.
    pub fn protocol_at(&self, k: u128) -> Protocol {
        assert!(k < self.total_candidates(), "candidate index out of range");
        let mut assignment = vec![0usize; self.pairs.len()];
        self.decode_assignment(k / self.output_patterns, &mut assignment);
        self.protocol_from_parts(&assignment, (k % self.output_patterns) as u32)
    }

    /// Materialises the candidate protocol of a decoded
    /// `(assignment, outputs)` pair.
    pub fn protocol_from_parts(&self, assignment: &[usize], outputs: u32) -> Protocol {
        let mut b = ProtocolBuilder::new(format!("enum-{}", self.num_states));
        let states: Vec<StateId> = (0..self.num_states)
            .map(|i| b.add_state(format!("s{i}"), Output::from_bool((outputs >> i) & 1 == 1)))
            .collect();
        for (&pair, &post_idx) in self.pairs.iter().zip(assignment) {
            let post = self.pairs[post_idx];
            if pair == post {
                continue; // implicit no-op
            }
            b.add_transition_idempotent(
                (states[pair.0], states[pair.1]),
                (states[post.0], states[post.1]),
            )
            .expect("states were just declared");
        }
        b.set_input_state("x", states[0]);
        b.build().expect("candidate construction is well-formed")
    }

    /// The states reachable support-wise from the input state 0: the least
    /// fixpoint of "both pre states covered ⟹ both post states covered".
    ///
    /// This is the Boolean abstraction of the Karp–Miller cover; the set is
    /// forward-closed (no transition leads out of it), which is what makes
    /// the coverable-support fingerprint of the triage layer sound (see
    /// `crates/reach/README.md`).
    pub fn coverable_support(&self, assignment: &[usize], support: &mut [bool]) {
        support.fill(false);
        support[0] = true;
        loop {
            let mut changed = false;
            for (i, &(a, b)) in self.pairs.iter().enumerate() {
                if !(support[a] && support[b]) {
                    continue;
                }
                let (c, d) = self.pairs[assignment[i]];
                if !support[c] {
                    support[c] = true;
                    changed = true;
                }
                if !support[d] {
                    support[d] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }
}

/// How a segmented search orders its candidate-index segments.
///
/// The encoded space is index-ordered by construction, and its low indices
/// are **degenerate-heavy**: a small function index has most of its
/// base-`|P|` digits equal to 0, i.e. almost every pair rewrites to pair
/// `(0, 0)` — protocols that collapse immediately and never verify an
/// interesting threshold.  A budgeted prefix search in index order therefore
/// spends its budget on the least interesting corner of the space.
///
/// [`SegmentOrder::EntropyDescending`] instead visits segments in order of
/// decreasing *function-index entropy*: segments whose transition digits are
/// spread over many distinct post pairs come first.  The score is the
/// collision statistic `Σ cᵢ²` of the digit histogram — the exact integer
/// surrogate of Rényi-2 entropy (`H₂ = −log Σ pᵢ²`), so ordering by
/// ascending collision count is ordering by descending H₂ without any
/// floating-point comparison (ties break towards the smaller segment index,
/// keeping the order a total, deterministic function of the space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentOrder {
    /// Segments in increasing candidate-index order (the PR 4 semantics).
    Index,
    /// Segments in decreasing function-index entropy (Rényi-2), ties by
    /// index.  Non-degenerate candidates surface orders of magnitude
    /// earlier; the processed *set* for a full range is identical.
    EntropyDescending,
}

impl OrbitSpace {
    /// The segment-ordering score of the candidate-index segment starting at
    /// `start`: the digit-collision statistic `Σ cᵢ²` of the segment's first
    /// function index (lower = more uniform digits = higher Rényi-2
    /// entropy).  A pure function of `(space, start)` — every resume and
    /// every worker count recomputes the identical segment order from it.
    pub fn segment_score(&self, start: u128) -> u64 {
        let mut function_index = start / self.output_patterns;
        let mut hist = vec![0u64; self.pairs.len()];
        for _ in 0..self.pairs.len() {
            hist[(function_index % self.choices) as usize] += 1;
            function_index /= self.choices;
        }
        hist.iter().map(|&c| c * c).sum()
    }
}

pub(crate) fn permutations_fixing_zero(num_states: usize) -> Vec<Vec<usize>> {
    let mut perms = Vec::new();
    if num_states <= 1 {
        return perms;
    }
    let mut tail: Vec<usize> = (1..num_states).collect();
    heap_permutations(&mut tail, 0, &mut |p| {
        let mut full = Vec::with_capacity(num_states);
        full.push(0);
        full.extend_from_slice(p);
        if full.iter().enumerate().any(|(i, &v)| i != v) {
            perms.push(full);
        }
    });
    perms
}

fn heap_permutations(items: &mut [usize], k: usize, emit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        emit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        heap_permutations(items, k + 1, emit);
        items.swap(k, i);
    }
}

/// A serialisable snapshot of an [`OrbitStream`] between two yields.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamCursor {
    /// The state count of the space the cursor belongs to.
    pub num_states: usize,
    /// The next candidate index to examine.
    pub next: U128Parts,
    /// The exclusive end of the stream's range.
    pub end: U128Parts,
    /// Candidates skipped so far as non-canonical orbit members.
    pub pruned_symmetric: u64,
    /// Canonical candidates yielded so far.
    pub yielded: u64,
}

/// A lazy scan over the canonical orbit representatives of an index range.
///
/// The stream never materialises anything beyond one decoded transition
/// assignment: the same `O(|P|)` scratch serves every candidate of a
/// function-index block (all `2ⁿ` output patterns share one decode).
#[derive(Debug)]
pub struct OrbitStream<'a> {
    space: &'a OrbitSpace,
    next: u128,
    end: u128,
    assignment: Vec<usize>,
    relabeled: Vec<usize>,
    /// Function index currently decoded into `assignment` (`u128::MAX` =
    /// none yet).
    decoded_function: u128,
    pruned_symmetric: u64,
    yielded: u64,
}

impl<'a> OrbitStream<'a> {
    /// Streams the whole candidate space of `space`.
    pub fn new(space: &'a OrbitSpace) -> Self {
        Self::range(space, 0, space.total_candidates())
    }

    /// Streams the deterministic work range `[start, end)` (clamped to the
    /// candidate space).
    pub fn range(space: &'a OrbitSpace, start: u128, end: u128) -> Self {
        let total = space.total_candidates();
        let num_pairs = space.pairs.len();
        OrbitStream {
            space,
            next: start.min(total),
            end: end.min(total),
            assignment: vec![0usize; num_pairs],
            relabeled: vec![0usize; num_pairs],
            decoded_function: u128::MAX,
            pruned_symmetric: 0,
            yielded: 0,
        }
    }

    /// Restores a stream from a checkpointed cursor.
    ///
    /// # Panics
    ///
    /// Panics if the cursor belongs to a different state count.
    pub fn resume(space: &'a OrbitSpace, cursor: &StreamCursor) -> Self {
        assert_eq!(
            cursor.num_states,
            space.num_states(),
            "cursor belongs to a different candidate space"
        );
        let mut stream = Self::range(space, cursor.next.get(), cursor.end.get());
        stream.pruned_symmetric = cursor.pruned_symmetric;
        stream.yielded = cursor.yielded;
        stream
    }

    /// Checkpoints the stream; [`OrbitStream::resume`] continues it
    /// bit-identically.
    pub fn cursor(&self) -> StreamCursor {
        StreamCursor {
            num_states: self.space.num_states(),
            next: self.next.into(),
            end: self.end.into(),
            pruned_symmetric: self.pruned_symmetric,
            yielded: self.yielded,
        }
    }

    /// The space this stream walks.
    pub fn space(&self) -> &'a OrbitSpace {
        self.space
    }

    /// Candidates skipped so far as non-canonical orbit members.
    pub fn pruned_symmetric(&self) -> u64 {
        self.pruned_symmetric
    }

    /// Canonical candidates yielded so far.
    pub fn yielded(&self) -> u64 {
        self.yielded
    }

    /// Returns `true` once every candidate encoding of the range has been
    /// consumed (the next [`OrbitStream::next_canonical`] would yield
    /// `None`).
    pub fn is_exhausted(&self) -> bool {
        self.next >= self.end
    }

    /// Advances to the next canonical candidate of the range and returns its
    /// encoding index; `None` when the range is exhausted.
    ///
    /// After a yield, [`OrbitStream::current_assignment`] exposes the
    /// decoded transition assignment without a second decode.
    pub fn next_canonical(&mut self) -> Option<u128> {
        while self.next < self.end {
            let k = self.next;
            self.next += 1;
            let function_index = k / self.space.output_patterns;
            if function_index != self.decoded_function {
                self.space
                    .decode_assignment(function_index, &mut self.assignment);
                self.decoded_function = function_index;
            }
            let outputs = (k % self.space.output_patterns) as u32;
            if self
                .space
                .is_canonical(&self.assignment, outputs, &mut self.relabeled)
            {
                self.yielded += 1;
                return Some(k);
            }
            self.pruned_symmetric += 1;
        }
        None
    }

    /// The transition assignment of the most recently yielded candidate.
    pub fn current_assignment(&self) -> &[usize] {
        &self.assignment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json;

    /// The reference semantics: materialise every canonical candidate of the
    /// space by a straight index scan.
    fn materialized_canonical(space: &OrbitSpace, end: u128) -> Vec<u128> {
        let mut assignment = vec![0usize; space.pairs().len()];
        let mut relabeled = vec![0usize; space.pairs().len()];
        let mut out = Vec::new();
        for k in 0..end.min(space.total_candidates()) {
            space.decode_assignment(k / space.output_patterns(), &mut assignment);
            if space.is_canonical(
                &assignment,
                (k % space.output_patterns()) as u32,
                &mut relabeled,
            ) {
                out.push(k);
            }
        }
        out
    }

    #[test]
    fn stream_equals_materialized_scan_for_two_states() {
        let space = OrbitSpace::new(2);
        let expected = materialized_canonical(&space, u128::MAX);
        let mut stream = OrbitStream::new(&space);
        let mut got = Vec::new();
        while let Some(k) = stream.next_canonical() {
            got.push(k);
        }
        assert_eq!(got, expected);
        assert_eq!(stream.yielded() as usize, expected.len());
        assert_eq!(
            stream.pruned_symmetric() as u128,
            space.total_candidates() - expected.len() as u128
        );
    }

    #[test]
    fn range_concatenation_reproduces_the_full_stream() {
        let space = OrbitSpace::new(3);
        let end = 20_000u128;
        let expected = materialized_canonical(&space, end);
        // Split the prefix at awkward, unaligned points.
        let cuts = [0u128, 1, 17, 4_097, 9_998, 15_000, end];
        let mut got = Vec::new();
        let mut pruned = 0;
        for w in cuts.windows(2) {
            let mut stream = OrbitStream::range(&space, w[0], w[1]);
            while let Some(k) = stream.next_canonical() {
                got.push(k);
            }
            pruned += stream.pruned_symmetric();
        }
        assert_eq!(got, expected);
        assert_eq!(pruned as u128 + expected.len() as u128, end);
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let space = OrbitSpace::new(3);
        let end = 30_000u128;
        let uninterrupted: Vec<u128> = {
            let mut s = OrbitStream::range(&space, 0, end);
            std::iter::from_fn(|| s.next_canonical()).collect()
        };
        // Interrupt after every yield count in a pseudo-random schedule.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next_cut = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 56) + 1
        };
        let mut resumed: Vec<u128> = Vec::new();
        let mut cursor = OrbitStream::range(&space, 0, end).cursor();
        loop {
            // Round-trip the cursor through JSON, as a real kill/resume would.
            let json = serde_json::to_string(&cursor).unwrap();
            let cursor_back: StreamCursor = serde_json::from_str(&json).unwrap();
            assert_eq!(cursor_back, cursor);
            let mut stream = OrbitStream::resume(&space, &cursor_back);
            let budget = next_cut();
            let mut n = 0;
            while n < budget {
                match stream.next_canonical() {
                    Some(k) => resumed.push(k),
                    None => break,
                }
                n += 1;
            }
            if stream.is_exhausted() && n < budget {
                assert_eq!(stream.yielded() as usize, resumed.len());
                break;
            }
            cursor = stream.cursor();
        }
        assert_eq!(resumed, uninterrupted);
    }

    #[test]
    fn u128_parts_round_trip() {
        for v in [0u128, 1, u64::MAX as u128, u128::MAX, 1 << 77] {
            let parts: U128Parts = v.into();
            assert_eq!(parts.get(), v);
            let json = serde_json::to_string(&parts).unwrap();
            let back: U128Parts = serde_json::from_str(&json).unwrap();
            assert_eq!(back.get(), v);
        }
    }

    #[test]
    fn coverable_support_is_forward_closed() {
        let space = OrbitSpace::new(3);
        let mut assignment = vec![0usize; space.pairs().len()];
        let mut support = vec![false; 3];
        for k in (0..space.total_candidates()).step_by(311) {
            space.decode_assignment(k / space.output_patterns(), &mut assignment);
            space.coverable_support(&assignment, &mut support);
            assert!(support[0], "the input state is always coverable");
            // Forward closure: a transition whose pre pair is inside the
            // support must land inside the support.
            for (i, &(a, b)) in space.pairs().iter().enumerate() {
                if support[a] && support[b] {
                    let (c, d) = space.pairs()[assignment[i]];
                    assert!(support[c] && support[d], "support leaks at pair {i}");
                }
            }
        }
    }

    #[test]
    fn protocol_at_matches_parts_decoding() {
        let space = OrbitSpace::new(2);
        let mut assignment = vec![0usize; space.pairs().len()];
        for k in (0..space.total_candidates()).step_by(7) {
            space.decode_assignment(k / space.output_patterns(), &mut assignment);
            let a = space.protocol_at(k);
            let b = space.protocol_from_parts(&assignment, (k % space.output_patterns()) as u32);
            assert_eq!(a, b, "candidate {k}");
        }
    }
}
