//! The Theorem 4.5 bound on the busy beaver function of protocols with
//! leaders.
//!
//! Theorem 4.5: a protocol with `n` states and `ℓ` leaders computing `x ≥ η`
//! satisfies `η < F_{ℓ,ϑ(n)}(n)`, where `F_{δ,g}` lives at level `F_ω` of the
//! Fast-Growing Hierarchy (Lemma 4.4) and `ϑ(n) = 2^((2n+2)!)` bounds the
//! number of elements of a small basis of `SC`.  The bound cannot be
//! materialised for any interesting `n`; this module reports its order of
//! magnitude and the exactly-computable ingredients.

use crate::constants::basis_size_bound;
use popproto_model::Protocol;
use popproto_numerics::{fgh, Magnitude};
use serde::{Deserialize, Serialize};

/// The ingredients and magnitude of the Theorem 4.5 bound for a protocol.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AckermannBound {
    /// Number of states `n`.
    pub num_states: usize,
    /// Number of leaders `ℓ` (the control offset of the controlled sequence).
    pub num_leaders: u64,
    /// The basis-size bound `ϑ(n)` (how many ordered elements Lemma 4.4 must produce).
    pub basis_size_bound: Magnitude,
    /// A magnitude-level stand-in for `F_{ℓ,ϑ(n)}(n)`: the Fast-Growing
    /// Hierarchy value `F_ω(n) = F_n(n)` reported as an order of magnitude.
    pub fgh_magnitude: Magnitude,
    /// Human-readable description of the bound.
    pub description: String,
}

/// Computes the Theorem 4.5 report for a protocol.
pub fn theorem_4_5_bound(protocol: &Protocol) -> AckermannBound {
    let n = protocol.num_states();
    let leaders = protocol.leaders().size();
    AckermannBound {
        num_states: n,
        num_leaders: leaders,
        basis_size_bound: basis_size_bound(n),
        fgh_magnitude: fgh::f_omega_magnitude(n as u64),
        description: format!(
            "η < F_{{{leaders},ϑ({n})}}({n}) — a level-F_ω bound; \
             ϑ({n}) = 2^(({})!) and F_ω({n}) is already ≳ {}",
            2 * n + 2,
            fgh::f_omega_magnitude(n as u64)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popproto_zoo::{binary_counter, leader_counter};

    #[test]
    fn report_for_leaderless_protocol() {
        let p = binary_counter(2);
        let bound = theorem_4_5_bound(&p);
        assert_eq!(bound.num_states, 4);
        assert_eq!(bound.num_leaders, 0);
        assert!(bound.description.contains("F_ω") || bound.description.contains("F_{0"));
    }

    #[test]
    fn report_for_leader_protocol() {
        let p = leader_counter(2);
        let bound = theorem_4_5_bound(&p);
        assert_eq!(bound.num_leaders, 2);
        assert_eq!(bound.num_states, 8);
    }

    #[test]
    fn bound_grows_with_state_count() {
        let small = theorem_4_5_bound(&binary_counter(1));
        let large = theorem_4_5_bound(&binary_counter(4));
        assert!(small.basis_size_bound < large.basis_size_bound);
        assert!(small.fgh_magnitude <= large.fgh_magnitude);
    }

    #[test]
    fn bound_dominates_the_actual_threshold() {
        // The binary counter with k = 3 has 5 states and decides η = 8; the
        // Theorem 4.5 ingredients dwarf that.
        let p = binary_counter(3);
        let bound = theorem_4_5_bound(&p);
        assert!(bound.basis_size_bound > Magnitude::from_u64(8));
        assert!(bound.fgh_magnitude > Magnitude::from_u64(8));
    }
}
