//! Plain-text / markdown rendering of experiment reports.

use crate::busy_beaver::BusyBeaverRecord;
use crate::experiments::{
    E12Report, E12SegmentedReport, E2Row, E4Row, E5Row, E6Row, E8Row, FullReport, SymbolicRow,
};

/// Renders the E1 witness table as a markdown table.
pub fn render_e1(records: &[BusyBeaverRecord]) -> String {
    let mut out = String::from(
        "| family | parameter | states | leaders | η | log₂η / state | verified |\n\
         |---|---|---|---|---|---|---|\n",
    );
    for r in records {
        out.push_str(&format!(
            "| {:?} | {} | {} | {} | {} | {:.3} | {} |\n",
            r.family,
            r.parameter,
            r.states,
            r.leaders,
            r.eta,
            r.log2_eta_per_state(),
            match r.verified {
                Some(true) => "yes",
                Some(false) => "NO",
                None => "skipped",
            }
        ));
    }
    out
}

/// Renders the E2 stable-basis table.
pub fn render_e2(rows: &[E2Row]) -> String {
    let mut out = String::from(
        "| protocol | output | empirical norm | elements | verified | β |\n|---|---|---|---|---|---|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            r.protocol, r.output, r.empirical_norm, r.elements, r.verified, r.beta
        ));
    }
    out
}

/// Renders the E4 saturation table.
pub fn render_e4(rows: &[E4Row]) -> String {
    let mut out = String::from(
        "| protocol | states | 3^n bound | min saturating input | path length |\n|---|---|---|---|---|\n",
    );
    for r in rows {
        let (input, path) = r
            .analysis
            .witness
            .as_ref()
            .map(|w| (w.input.to_string(), w.path_length.to_string()))
            .unwrap_or_else(|| ("—".into(), "—".into()));
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            r.protocol, r.analysis.num_states, r.analysis.bound_3n, input, path
        ));
    }
    out
}

/// Renders the E5 Pottier table.
pub fn render_e5(rows: &[E5Row]) -> String {
    let mut out = String::from(
        "| protocol | |T| | basis size | max ‖π‖₁ | ξ/2 | ξ_det/2 | complete |\n|---|---|---|---|---|---|---|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} |\n",
            r.protocol,
            r.transitions,
            r.basis_size,
            r.max_norm,
            r.pottier_half_bound,
            r.deterministic_bound
                .map(|v| v.to_string())
                .unwrap_or_else(|| "—".into()),
            r.complete
        ));
    }
    out
}

/// Renders the E6 pipeline table.
pub fn render_e6(rows: &[E6Row]) -> String {
    let mut out = String::from(
        "| protocol | states | true η | empirical bound a | Theorem 5.9 bound |\n|---|---|---|---|---|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            r.analysis.protocol,
            r.analysis.num_states,
            r.true_eta,
            r.analysis
                .empirical_bound
                .map(|v| v.to_string())
                .unwrap_or_else(|| "—".into()),
            r.analysis.theorem_bound
        ));
    }
    out
}

/// Renders the E8 simulation table.
pub fn render_e8(rows: &[E8Row]) -> String {
    let mut out = String::from(
        "| protocol | population | runs | converged | mean parallel time |\n|---|---|---|---|---|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {:.1} |\n",
            r.protocol, r.population, r.runs, r.converged, r.mean_parallel_time
        ));
    }
    out
}

/// Renders the E11 symbolic-verification table, with the *unbounded
/// verdict* column: what the symbolic engine proves about **every**
/// population size, next to the slice range the enumerative cross-check
/// covered.
pub fn render_symbolic(rows: &[SymbolicRow]) -> String {
    let mut out = String::from(
        "| protocol | η | unbounded verdict | cover labels | SC₁ basis | SC₁ ideals | \
         silencing rounds | slices cross-checked | agrees |\n\
         |---|---|---|---|---|---|---|---|---|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | 2..={} | {} |\n",
            r.protocol,
            r.eta,
            r.verdict.summary(),
            r.cover_labels,
            r.sc1_basis,
            r.sc1_ideals,
            r.silencing_rounds
                .map(|n| n.to_string())
                .unwrap_or_else(|| "—".into()),
            r.enumerative_checked_up_to,
            match r.matches_enumerative {
                Some(true) => "yes",
                Some(false) => "NO",
                None => "n/a",
            }
        ));
    }
    out
}

/// Renders the E12 staged-funnel table: how the streamed `BB_det(4)` prefix
/// was whittled down stage by stage.
pub fn render_e12(report: &E12Report) -> String {
    let s = &report.stats;
    let mut out = String::from("| stage | candidates | share of canonical |\n|---|---|---|\n");
    let canonical = s.canonical_orbits.max(1);
    let mut row = |stage: &str, count: u64| {
        out.push_str(&format!(
            "| {stage} | {count} | {:.1}% |\n",
            count as f64 * 100.0 / canonical as f64
        ));
    };
    row("canonical orbits streamed", s.canonical_orbits);
    row("rejected: symbolic pre-filter", s.pruned_symbolic);
    row("rejected: η-floor (SC₀ bounded)", s.pruned_eta_bounded);
    row("profiled on concrete slices", s.profiled);
    row("confirmed a threshold", s.threshold_protocols);
    row("answered from local memo table", s.memo_hits);
    out.push_str(&format!(
        "\n{} non-canonical encodings were skipped by the generator; the memo \
         table held {} distinct coverable-support restrictions; best η so far: \
         {} (floor {}), truncated orbits: {}.\n",
        s.pruned_symmetric,
        report.memo_entries,
        report
            .best_eta
            .map(|e| e.to_string())
            .unwrap_or_else(|| "—".into()),
        report.eta_floor,
        s.truncated_orbits
    ));
    out
}

/// Renders the parallel segmented E12 report: the same staged funnel, but
/// merged from deterministic work-stealing segments, with the memo hits
/// split into the deterministic (local) and scheduling-dependent
/// (cross-segment) counts.
pub fn render_e12_segmented(report: &E12SegmentedReport) -> String {
    let s = &report.stats;
    let mut out = format!(
        "| segments merged | workers | order | orbits | candidates |\n|---|---|---|---|---|\n\
         | {} | {} | {} | {} | {} |\n\n",
        report.segments_merged,
        report.workers,
        report.order,
        report.prefix_orbits,
        report.candidates_consumed,
    );
    out.push_str(&format!(
        "Funnel: {} symbolic / {} η-floor / {} profiled / {} confirmed; best η {} \
         (floor {}); memo hits {} local (deterministic) + {} cross-segment \
         (scheduling-dependent) over {} shared entries; witness set: {} confirmed \
         candidate indices.\n",
        s.pruned_symbolic,
        s.pruned_eta_bounded,
        s.profiled,
        s.threshold_protocols,
        report
            .best_eta
            .map(|e| e.to_string())
            .unwrap_or_else(|| "—".into()),
        report.eta_floor,
        s.memo_hits,
        s.memo_hits_cross,
        report.shared_memo_entries,
        report.confirmed.len(),
    ));
    out
}

/// Renders an [`ObsSnapshot`](popproto_obs::ObsSnapshot) — the unified
/// metrics registry (exec-pool stats, ensemble wave-phase breakdown,
/// pipeline funnel) — as markdown tables, one per metric kind.
pub fn render_obs(snapshot: &popproto_obs::ObsSnapshot) -> String {
    let mut out = String::from("## Observability snapshot\n");
    if snapshot.is_empty() {
        out.push_str("\n(no metrics recorded)\n");
        return out;
    }
    if !snapshot.counters.is_empty() {
        out.push_str("\n| counter | value |\n|---|---|\n");
        for (name, value) in &snapshot.counters {
            out.push_str(&format!("| {name} | {value} |\n"));
        }
    }
    if !snapshot.gauges.is_empty() {
        out.push_str("\n| gauge | value |\n|---|---|\n");
        for (name, value) in &snapshot.gauges {
            out.push_str(&format!("| {name} | {value} |\n"));
        }
    }
    if !snapshot.histograms.is_empty() {
        out.push_str("\n| histogram | observations | sum | mean |\n|---|---|---|---|\n");
        for h in &snapshot.histograms {
            out.push_str(&format!(
                "| {} | {} | {} | {:.1} |\n",
                h.name,
                h.count,
                h.sum,
                h.mean()
            ));
        }
    }
    out
}

/// Renders the full small-scale report.
pub fn render_full(report: &FullReport) -> String {
    let mut out = String::new();
    out.push_str("# State complexity of population protocols — experiment report\n\n");
    out.push_str("## E1 — busy beaver witness families\n\n");
    out.push_str(&render_e1(&report.e1.records));
    out.push_str("\n## E2 — small bases of stable sets\n\n");
    out.push_str(&render_e2(&report.e2));
    out.push_str("\n## E4 — saturation vs 3^n\n\n");
    out.push_str(&render_e4(&report.e4));
    out.push_str("\n## E5 — Pottier bases\n\n");
    out.push_str(&render_e5(&report.e5));
    out.push_str("\n## E6 — leaderless pipeline\n\n");
    out.push_str(&render_e6(&report.e6));
    out.push_str("\n## E8 — simulated parallel time\n\n");
    out.push_str(&render_e8(&report.e8));
    if !report.symbolic.is_empty() {
        out.push_str("\n## E11 — symbolic verification for all population sizes\n\n");
        out.push_str(&render_symbolic(&report.symbolic));
        out.push_str(
            "\nThe unbounded verdict is proved symbolically: a silencing certificate \
             (iterated linear ranking) shows every run can reach a silent configuration, \
             the Karp–Miller cover and linear invariants bound the sizes at which a \
             wrong-consensus silent configuration can exist, and the finitely many \
             slices below that cutoff are verified exhaustively — so the verdict holds \
             for every population size, not just the cross-checked slices.\n",
        );
    }
    if report.e12.stats.canonical_orbits > 0 {
        out.push_str("\n## E12 — streamed BB_det(4) prefix (staged pipeline)\n\n");
        out.push_str(&render_e12(&report.e12));
        out.push_str(
            "\nThe 4-state candidate space (~10¹⁰ relabelling orbits) is searched as a \
             stream: a lazy canonical-orbit generator feeds a staged triage pipeline \
             (symbolic pre-filter, η-floor filter, concrete slices) whose verdicts are \
             memoized across candidates sharing a coverable-support restriction, and \
             the whole search state — generator cursor, funnel counters, memo table, \
             best witness — checkpoints to JSON for multi-session resumption.\n",
        );
    }
    if report.e12_parallel.prefix_orbits > 0 {
        out.push_str("\n## E12 — parallel segmented streaming (work-stealing pool)\n\n");
        out.push_str(&render_e12_segmented(&report.e12_parallel));
        out.push_str(
            "\nThe same pipeline, parallel: the candidate range is cut into \
             deterministic segments, workers pull segments from a work-stealing pool \
             and share one cross-segment transposition table, and the per-segment \
             results are folded in a fixed segment order — so every number above \
             except the cross-segment memo hits is bit-identical at any worker \
             count.  The `entropy` order visits segments by descending \
             function-index entropy, surfacing non-degenerate candidates long \
             before an index-ordered scan would reach them.\n",
        );
    }
    if !report.e8_large.is_empty() {
        out.push_str("\n## E8 — large populations (batched engine)\n\n");
        out.push_str(&render_e8(&report.e8_large));
        out.push_str(
            "\nApproximate majority stabilises in O(log n) parallel time, so the \
             collision-adjusted batched engine reaches silence in seconds even at 10⁸ \
             agents; the threshold families above need Θ(n) parallel time to go silent \
             and are therefore only simulated at small n.\n",
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments;

    #[test]
    fn tables_have_header_and_rows() {
        let e1 = experiments::experiment_e1(3, 2, 1, 8);
        let table = render_e1(&e1.records);
        assert!(table.starts_with("| family"));
        assert_eq!(table.lines().count(), 2 + e1.records.len());
        assert!(table.contains("BinaryCounter"));
    }

    #[test]
    fn e5_table_renders_bounds() {
        let rows = experiments::experiment_e5(&[popproto_zoo::flock(3)]);
        let table = render_e5(&rows);
        assert!(table.contains("flock(3)"));
    }

    #[test]
    fn symbolic_table_renders_unbounded_verdicts() {
        let rows = experiments::experiment_symbolic(6);
        let table = render_symbolic(&rows);
        assert!(table.contains("unbounded verdict"));
        assert!(table.contains("flock(3)"));
        assert!(table.contains("all n"));
        // Even with a cross-check window below binary_counter(3)'s η = 8
        // (where every slice rejects and the profiler short-circuits), the
        // slices are consistent with the certified threshold — no row may
        // render a disagreement.
        assert!(!table.contains("| NO |"), "false disagreement:\n{table}");
    }

    #[test]
    fn e12_funnel_renders_all_stages() {
        let report = experiments::experiment_e12_bb4_prefix(500, 6);
        let table = render_e12(&report);
        assert!(table.contains("canonical orbits streamed"));
        assert!(table.contains("symbolic pre-filter"));
        assert!(table.contains("η-floor"));
        assert!(table.contains("memo table"));
        assert!(table.contains("| 500 |"));
    }

    #[test]
    fn e12_segmented_table_renders_the_split_memo_hits() {
        let report = experiments::experiment_e12_segmented(
            300,
            6,
            2,
            crate::orbit_stream::SegmentOrder::EntropyDescending,
        );
        let table = render_e12_segmented(&report);
        assert!(table.contains("entropy"));
        assert!(table.contains("local (deterministic)"));
        assert!(table.contains("cross-segment"));
    }

    #[test]
    fn obs_snapshot_renders_every_metric_kind() {
        // Unique names: the registry is process-wide and other tests in
        // this binary may publish concurrently, so assert only on our own
        // entries rather than resetting under their feet.
        let reg = popproto_obs::registry();
        reg.counter("report_test.offers").add(3);
        reg.set_gauge("report_test.best_eta", 8);
        reg.histogram("report_test.batch_len").observe(1000);
        let table = render_obs(&reg.snapshot());
        assert!(table.contains("| report_test.offers | 3 |"));
        assert!(table.contains("| report_test.best_eta | 8 |"));
        assert!(table.contains("report_test.batch_len"));

        let funnel = crate::candidate_pipeline::PipelineStats {
            canonical_orbits: 10,
            ..Default::default()
        };
        funnel.publish("report_test.funnel");
        let table = render_obs(&reg.snapshot());
        assert!(table.contains("| report_test.funnel.canonical_orbits | 10 |"));
    }

    #[test]
    fn e8_large_section_renders_when_present() {
        let rows = experiments::experiment_e8_large(&[10_000], 1);
        let table = render_e8(&rows);
        assert!(table.contains("approximate_majority"));
        assert!(table.contains("10000"));
    }
}
