//! Potentially realisable multisets of transitions and the Pottier constant
//! (Definition 4, Corollary 5.7, Definition 6 and Remark 1 of the paper).
//!
//! A multiset `π` of transitions is *potentially realisable* if
//! `IC(i) =π⇒ C` for some input `i` and configuration `C ≥ 0`; equivalently,
//! `π` solves the homogeneous system `Σ_t π(t)·Δt(q) ≥ 0` for every state
//! `q` other than the input state(s).  Pottier's theorem bounds the 1-norm of
//! a basis of that system by `ξ/2` where `ξ = 2(2|T|+1)^{|Q|}` is the
//! *Pottier constant* of the protocol.

use crate::hilbert::{hilbert_basis_inequalities, HilbertBasis, HilbertOptions};
use crate::parikh::ParikhImage;
use popproto_model::{Config, Protocol, StateId};
use popproto_numerics::{saturating_pow_u64, BigNat};
use serde::{Deserialize, Serialize};

/// The Pottier constant `ξ = 2(2|T|+1)^{|Q|}` of a protocol (Definition 6),
/// as an exact big integer.
pub fn pottier_constant(protocol: &Protocol) -> BigNat {
    let base = BigNat::from(2 * protocol.num_transitions() as u64 + 1);
    base.pow(protocol.num_states() as u64) * BigNat::from(2u64)
}

/// The Pottier constant saturated to `u64` (handy for small protocols).
pub fn pottier_constant_u64(protocol: &Protocol) -> u64 {
    saturating_pow_u64(
        2 * protocol.num_transitions() as u64 + 1,
        protocol.num_states() as u32,
    )
    .saturating_mul(2)
}

/// The Pottier constant for *deterministic* protocols (Remark 1):
/// `ξ = 2(|Q|+2)^{|Q|}`.
pub fn pottier_constant_deterministic(protocol: &Protocol) -> BigNat {
    let base = BigNat::from(protocol.num_states() as u64 + 2);
    base.pow(protocol.num_states() as u64) * BigNat::from(2u64)
}

/// The homogeneous Diophantine system whose solutions are the potentially
/// realisable multisets of a protocol (Section 5.4).
///
/// # Examples
///
/// ```
/// use popproto_model::{Output, ProtocolBuilder};
/// use popproto_vas::{HilbertOptions, RealisabilitySystem};
///
/// # fn main() -> Result<(), popproto_model::ProtocolError> {
/// let mut b = ProtocolBuilder::new("demo");
/// let x = b.add_state("x", Output::False);
/// let acc = b.add_state("acc", Output::True);
/// b.add_transition((x, x), (acc, acc))?;
/// b.set_input_state("x", x);
/// let p = b.build()?;
///
/// let sys = RealisabilitySystem::new(&p);
/// let basis = sys.basis(&HilbertOptions::default());
/// assert!(basis.complete);
/// // Firing the single transition once is potentially realisable.
/// assert_eq!(basis.solutions, vec![vec![1]]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RealisabilitySystem {
    matrix: Vec<Vec<i64>>,
    constrained_states: Vec<StateId>,
    input_states: Vec<StateId>,
    num_states: usize,
    num_transitions: usize,
}

impl RealisabilitySystem {
    /// Builds the realisability system of a protocol: one inequality
    /// `Σ_t π(t)·Δt(q) ≥ 0` per non-input state `q`.
    pub fn new(protocol: &Protocol) -> Self {
        let n = protocol.num_states();
        let input_states: Vec<StateId> =
            protocol.input_variables().iter().map(|v| v.state).collect();
        let constrained_states: Vec<StateId> = protocol
            .state_ids()
            .filter(|q| !input_states.contains(q))
            .collect();
        let mut matrix = Vec::with_capacity(constrained_states.len());
        for &q in &constrained_states {
            let row: Vec<i64> = protocol
                .transitions()
                .iter()
                .map(|t| t.displacement(n)[q.index()])
                .collect();
            matrix.push(row);
        }
        RealisabilitySystem {
            matrix,
            constrained_states,
            input_states,
            num_states: n,
            num_transitions: protocol.num_transitions(),
        }
    }

    /// The coefficient matrix (rows = non-input states, columns = transitions).
    pub fn matrix(&self) -> &[Vec<i64>] {
        &self.matrix
    }

    /// The states constrained by the system (all states except input states).
    pub fn constrained_states(&self) -> &[StateId] {
        &self.constrained_states
    }

    /// Returns `true` if the multiset `π` is potentially realisable.
    pub fn is_potentially_realisable(&self, pi: &ParikhImage) -> bool {
        crate::hilbert::is_solution_inequalities(&self.matrix, pi.counts())
    }

    /// Computes a generating basis of the potentially realisable multisets.
    pub fn basis(&self, options: &HilbertOptions) -> HilbertBasis {
        hilbert_basis_inequalities(&self.matrix, options)
    }

    /// The Pottier bound `ξ/2 = (2|T|+1)^{|Q|}` on the 1-norm of basis
    /// elements, saturated to `u64`.
    pub fn pottier_bound_u64(&self) -> u64 {
        saturating_pow_u64(2 * self.num_transitions as u64 + 1, self.num_states as u32)
    }

    /// The minimal realisation of a potentially realisable multiset (cf.
    /// Corollary 5.7): the smallest input `i` and the configuration `C` with
    /// `IC(i) =π⇒ C`, assuming a leaderless unary protocol.
    ///
    /// Returns `None` if `π` is not potentially realisable.
    pub fn minimal_realisation(
        &self,
        protocol: &Protocol,
        pi: &ParikhImage,
    ) -> Option<(u64, Config)> {
        if !self.is_potentially_realisable(pi) {
            return None;
        }
        let displacement = pi.displacement(protocol);
        // The input state loses agents; all others gain (by realisability).
        let input_state = protocol.input_state(0);
        let deficit = -displacement.get(input_state.index());
        let i = u64::try_from(deficit.max(0)).expect("deficit is non-negative here");
        let mut c = Config::empty(protocol.num_states());
        for q in protocol.state_ids() {
            let base = if q == input_state { i as i64 } else { 0 };
            let value = base + displacement.get(q.index());
            c.set(q, u64::try_from(value).ok()?);
        }
        Some((i, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popproto_model::{Output, ProtocolBuilder};

    /// The P'_2 protocol: states {0, 1, 2, 4}, threshold x ≥ 4.
    fn binary_counter() -> Protocol {
        let mut b = ProtocolBuilder::new("x >= 4");
        let zero = b.add_state("0", Output::False);
        let one = b.add_state("1", Output::False);
        let two = b.add_state("2", Output::False);
        let four = b.add_state("4", Output::True);
        b.add_transition((one, one), (zero, two)).unwrap();
        b.add_transition((two, two), (zero, four)).unwrap();
        for &a in &[zero, one, two, four] {
            b.add_transition_idempotent((a, four), (four, four))
                .unwrap();
        }
        b.set_input_state("x", one);
        b.build().unwrap()
    }

    #[test]
    fn constants_match_formulas() {
        let p = binary_counter();
        let t = p.num_transitions() as u64;
        let q = p.num_states() as u64;
        let xi = pottier_constant(&p);
        assert_eq!(xi, BigNat::from(2 * t + 1).pow(q) * BigNat::from(2u64));
        assert_eq!(pottier_constant_u64(&p), 2 * (2 * t + 1).pow(q as u32));
        let xi_det = pottier_constant_deterministic(&p);
        assert_eq!(xi_det, BigNat::from(q + 2).pow(q) * BigNat::from(2u64));
        // For this protocol |T| ≥ |Q|, so the deterministic constant is smaller.
        assert!(xi_det < xi);
    }

    #[test]
    fn system_shape() {
        let p = binary_counter();
        let sys = RealisabilitySystem::new(&p);
        // One row per non-input state.
        assert_eq!(sys.matrix().len(), 3);
        assert_eq!(sys.matrix()[0].len(), p.num_transitions());
        assert_eq!(sys.constrained_states().len(), 3);
    }

    #[test]
    fn realisability_of_simple_multisets() {
        let p = binary_counter();
        let sys = RealisabilitySystem::new(&p);
        // Firing 1,1 ↦ 0,2 once: Δ(0)=+1, Δ(2)=+1, Δ(1)=-2 — realisable
        // (only the input state loses agents).
        let pi = ParikhImage::from_counts({
            let mut v = vec![0u64; p.num_transitions()];
            v[0] = 1;
            v
        });
        assert!(sys.is_potentially_realisable(&pi));
        // Firing 2,2 ↦ 0,4 once without producing the 2s first is NOT
        // potentially realisable: state 2 would go negative.
        let pi = ParikhImage::from_counts({
            let mut v = vec![0u64; p.num_transitions()];
            v[1] = 1;
            v
        });
        assert!(!sys.is_potentially_realisable(&pi));
        // Two firings of t0 followed by one of t1 are realisable.
        let pi = ParikhImage::from_counts({
            let mut v = vec![0u64; p.num_transitions()];
            v[0] = 2;
            v[1] = 1;
            v
        });
        assert!(sys.is_potentially_realisable(&pi));
    }

    #[test]
    fn basis_elements_respect_pottier_bound() {
        let p = binary_counter();
        let sys = RealisabilitySystem::new(&p);
        let basis = sys.basis(&HilbertOptions::default());
        assert!(
            basis.complete,
            "basis search should complete for this small protocol"
        );
        assert!(!basis.is_empty());
        let bound = sys.pottier_bound_u64();
        assert!(
            basis.max_norm1() <= bound,
            "max basis norm {} exceeds the Pottier bound {}",
            basis.max_norm1(),
            bound
        );
        // Every basis element is indeed potentially realisable.
        for s in &basis.solutions {
            let pi = ParikhImage::from_counts(s.clone());
            assert!(sys.is_potentially_realisable(&pi));
        }
    }

    #[test]
    fn minimal_realisation_matches_corollary_57() {
        let p = binary_counter();
        let sys = RealisabilitySystem::new(&p);
        // π = 2·t0 + 1·t1: needs 4 input agents and ends with ⟨2·q0, 1·q4⟩ + 1·q2?
        // Δ = 2·(+1,-2,+1,0) + (+1,0,-2,+1) = (+3,-4,0,+1).
        let mut counts = vec![0u64; p.num_transitions()];
        counts[0] = 2;
        counts[1] = 1;
        let pi = ParikhImage::from_counts(counts);
        let (i, c) = sys.minimal_realisation(&p, &pi).unwrap();
        assert_eq!(i, 4);
        assert_eq!(c.counts(), &[3, 0, 0, 1]);
        // The realisation is consistent with the Parikh displacement.
        assert_eq!(pi.apply(&p, &p.initial_config_unary(i)), Some(c));
    }

    #[test]
    fn minimal_realisation_rejects_unrealisable() {
        let p = binary_counter();
        let sys = RealisabilitySystem::new(&p);
        let mut counts = vec![0u64; p.num_transitions()];
        counts[1] = 1;
        let pi = ParikhImage::from_counts(counts);
        assert!(sys.minimal_realisation(&p, &pi).is_none());
    }
}
