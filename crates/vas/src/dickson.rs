//! Dickson's lemma utilities: finding ordered pairs and ordered subsequences
//! in sequences of configurations (Lemma 4.3 of the paper).
//!
//! Dickson's lemma states that every infinite sequence of vectors of `N^d`
//! contains an infinite ordered subsequence.  The paper applies it to the
//! sequence `C₂, C₃, C₄, …` of stable configurations of Lemma 4.2: an ordered
//! pair `C_k ≤ C_ℓ` landing in the same basis element yields the pumping
//! certificate of Lemma 4.1.  On finite prefixes the ordered pair may or may
//! not exist; these functions search for it.

use popproto_model::Config;

/// Finds the first (lexicographically smallest by `(j, i)`) pair of indices
/// `i < j` with `seq[i] ≤ seq[j]` in the pointwise order.
///
/// Returns `None` if the finite prefix is a *bad sequence* (an antichain in
/// the scattered-subword sense).
///
/// # Examples
///
/// ```
/// use popproto_model::Config;
/// use popproto_vas::find_increasing_pair;
///
/// let seq = vec![
///     Config::from_counts(vec![2, 0]),
///     Config::from_counts(vec![1, 1]),
///     Config::from_counts(vec![1, 2]),
/// ];
/// assert_eq!(find_increasing_pair(&seq), Some((1, 2)));
/// ```
pub fn find_increasing_pair(seq: &[Config]) -> Option<(usize, usize)> {
    for j in 1..seq.len() {
        for i in 0..j {
            if seq[i].le(&seq[j]) {
                return Some((i, j));
            }
        }
    }
    None
}

/// Extracts a long non-decreasing subsequence (by pointwise order) from the
/// sequence, returning the selected indices.
///
/// The extraction is the classical patience-style dynamic program on the
/// product order: `O(n²·d)` time, exact longest chain.
pub fn extract_increasing_subsequence(seq: &[Config]) -> Vec<usize> {
    let n = seq.len();
    if n == 0 {
        return Vec::new();
    }
    // best[i] = length of the longest chain ending at i; prev[i] = predecessor.
    let mut best = vec![1usize; n];
    let mut prev = vec![usize::MAX; n];
    for j in 0..n {
        for i in 0..j {
            if seq[i].le(&seq[j]) && best[i] + 1 > best[j] {
                best[j] = best[i] + 1;
                prev[j] = i;
            }
        }
    }
    let (mut idx, _) = best
        .iter()
        .enumerate()
        .max_by_key(|(_, &len)| len)
        .expect("non-empty sequence");
    let mut chain = vec![idx];
    while prev[idx] != usize::MAX {
        idx = prev[idx];
        chain.push(idx);
    }
    chain.reverse();
    chain
}

/// Returns `true` if the sequence is *good*: it contains indices `i < j`
/// with `seq[i] ≤ seq[j]` (the terminology of Section 4).
pub fn is_good_sequence(seq: &[Config]) -> bool {
    find_increasing_pair(seq).is_some()
}

/// Returns `true` if the sequence is *bad* (not good): no element embeds into
/// a later one.
pub fn is_bad_sequence(seq: &[Config]) -> bool {
    !is_good_sequence(seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(counts: &[u64]) -> Config {
        Config::from_counts(counts.to_vec())
    }

    #[test]
    fn increasing_pair_found() {
        let seq = vec![cfg(&[3, 0]), cfg(&[2, 1]), cfg(&[3, 1])];
        assert_eq!(find_increasing_pair(&seq), Some((0, 2)));
        assert!(is_good_sequence(&seq));
    }

    #[test]
    fn bad_sequence_detected() {
        // Strictly decreasing in the first coordinate, increasing in the second
        // only when the first drops: an antichain.
        let seq = vec![cfg(&[3, 0]), cfg(&[2, 1]), cfg(&[1, 2]), cfg(&[0, 3])];
        assert_eq!(find_increasing_pair(&seq), None);
        assert!(is_bad_sequence(&seq));
    }

    #[test]
    fn equal_elements_form_a_pair() {
        let seq = vec![cfg(&[1, 1]), cfg(&[1, 1])];
        assert_eq!(find_increasing_pair(&seq), Some((0, 1)));
    }

    #[test]
    fn empty_and_singleton_sequences() {
        assert_eq!(find_increasing_pair(&[]), None);
        assert_eq!(find_increasing_pair(&[cfg(&[1])]), None);
        assert!(extract_increasing_subsequence(&[]).is_empty());
        assert_eq!(extract_increasing_subsequence(&[cfg(&[1])]), vec![0]);
    }

    #[test]
    fn longest_chain_extraction() {
        let seq = vec![
            cfg(&[1, 1]),
            cfg(&[0, 5]),
            cfg(&[2, 1]),
            cfg(&[2, 2]),
            cfg(&[1, 0]),
            cfg(&[3, 3]),
        ];
        let chain = extract_increasing_subsequence(&seq);
        assert_eq!(chain, vec![0, 2, 3, 5]);
        // The chain must indeed be non-decreasing.
        for w in chain.windows(2) {
            assert!(seq[w[0]].le(&seq[w[1]]));
        }
    }

    #[test]
    fn chain_in_monotone_sequence_is_everything() {
        let seq: Vec<Config> = (0..6).map(|i| cfg(&[i, i + 1])).collect();
        assert_eq!(extract_increasing_subsequence(&seq).len(), 6);
    }
}
