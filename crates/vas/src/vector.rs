//! Dense integer vectors used for displacements and Diophantine systems.

use popproto_model::Config;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Neg, Sub};

/// A dense vector over the integers.
///
/// # Examples
///
/// ```
/// use popproto_vas::ZVec;
/// let a = ZVec::from(vec![1, -2, 3]);
/// let b = ZVec::from(vec![0, 2, -3]);
/// assert_eq!((a.clone() + b).entries(), &[1, 0, 0]);
/// assert_eq!(a.norm1(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ZVec {
    entries: Vec<i64>,
}

impl ZVec {
    /// The zero vector of the given dimension.
    pub fn zero(dim: usize) -> Self {
        ZVec {
            entries: vec![0; dim],
        }
    }

    /// The `i`-th unit vector of the given dimension.
    pub fn unit(dim: usize, i: usize) -> Self {
        let mut v = ZVec::zero(dim);
        v.entries[i] = 1;
        v
    }

    /// The dimension of the vector.
    pub fn dim(&self) -> usize {
        self.entries.len()
    }

    /// The entries of the vector.
    pub fn entries(&self) -> &[i64] {
        &self.entries
    }

    /// The entry at index `i`.
    pub fn get(&self, i: usize) -> i64 {
        self.entries[i]
    }

    /// Sets the entry at index `i`.
    pub fn set(&mut self, i: usize, v: i64) {
        self.entries[i] = v;
    }

    /// The 1-norm `‖v‖₁ = Σ|vᵢ|`.
    pub fn norm1(&self) -> u64 {
        self.entries.iter().map(|e| e.unsigned_abs()).sum()
    }

    /// The ∞-norm `‖v‖_∞ = max |vᵢ|`.
    pub fn norm_inf(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| e.unsigned_abs())
            .max()
            .unwrap_or(0)
    }

    /// Returns `true` if all entries are ≥ 0.
    pub fn is_nonnegative(&self) -> bool {
        self.entries.iter().all(|&e| e >= 0)
    }

    /// Returns `true` if all entries are zero.
    pub fn is_zero(&self) -> bool {
        self.entries.iter().all(|&e| e == 0)
    }

    /// The dot product with another vector.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn dot(&self, other: &ZVec) -> i64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.entries
            .iter()
            .zip(&other.entries)
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Adds `k` times `other` to this vector.
    pub fn add_scaled(&mut self, other: &ZVec, k: i64) {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        for (a, b) in self.entries.iter_mut().zip(&other.entries) {
            *a += k * b;
        }
    }

    /// Converts a configuration into the corresponding non-negative vector.
    pub fn from_config(c: &Config) -> ZVec {
        ZVec {
            entries: c.counts().iter().map(|&x| x as i64).collect(),
        }
    }

    /// Converts a non-negative vector into a configuration.
    ///
    /// Returns `None` if any entry is negative.
    pub fn to_config(&self) -> Option<Config> {
        let counts = self
            .entries
            .iter()
            .map(|&e| u64::try_from(e).ok())
            .collect::<Option<Vec<_>>>()?;
        Some(Config::from_counts(counts))
    }

    /// Pointwise order `v ≤ w`.
    pub fn le(&self, other: &ZVec) -> bool {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.entries.iter().zip(&other.entries).all(|(a, b)| a <= b)
    }
}

impl From<Vec<i64>> for ZVec {
    fn from(entries: Vec<i64>) -> Self {
        ZVec { entries }
    }
}

impl Add for ZVec {
    type Output = ZVec;
    fn add(mut self, rhs: ZVec) -> ZVec {
        self.add_scaled(&rhs, 1);
        self
    }
}

impl Sub for ZVec {
    type Output = ZVec;
    fn sub(mut self, rhs: ZVec) -> ZVec {
        self.add_scaled(&rhs, -1);
        self
    }
}

impl Neg for ZVec {
    type Output = ZVec;
    fn neg(mut self) -> ZVec {
        for e in &mut self.entries {
            *e = -*e;
        }
        self
    }
}

impl fmt::Display for ZVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_norms() {
        let v = ZVec::from(vec![3, -4, 0]);
        assert_eq!(v.dim(), 3);
        assert_eq!(v.norm1(), 7);
        assert_eq!(v.norm_inf(), 4);
        assert!(!v.is_nonnegative());
        assert!(!v.is_zero());
        assert!(ZVec::zero(5).is_zero());
        assert_eq!(ZVec::unit(3, 1).entries(), &[0, 1, 0]);
    }

    #[test]
    fn arithmetic() {
        let a = ZVec::from(vec![1, 2]);
        let b = ZVec::from(vec![3, -1]);
        assert_eq!((a.clone() + b.clone()).entries(), &[4, 1]);
        assert_eq!((a.clone() - b.clone()).entries(), &[-2, 3]);
        assert_eq!((-a.clone()).entries(), &[-1, -2]);
        assert_eq!(a.dot(&b), 1);
        let mut c = a.clone();
        c.add_scaled(&b, 2);
        assert_eq!(c.entries(), &[7, 0]);
    }

    #[test]
    fn config_conversions() {
        let c = Config::from_counts(vec![2, 0, 5]);
        let v = ZVec::from_config(&c);
        assert_eq!(v.entries(), &[2, 0, 5]);
        assert_eq!(v.to_config(), Some(c));
        assert_eq!(ZVec::from(vec![1, -1]).to_config(), None);
    }

    #[test]
    fn pointwise_order() {
        let a = ZVec::from(vec![1, 2, 3]);
        let b = ZVec::from(vec![1, 3, 3]);
        assert!(a.le(&b));
        assert!(!b.le(&a));
        assert!(a.le(&a));
    }

    #[test]
    fn display() {
        assert_eq!(ZVec::from(vec![1, -2]).to_string(), "[1, -2]");
    }
}
