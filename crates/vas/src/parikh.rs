//! Parikh images of transition sequences and the potential-reachability
//! relation `C =π⇒ C'` of Section 5.1.

use crate::vector::ZVec;
use popproto_model::{Config, Protocol};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The Parikh image (multiset) of a sequence of transitions: how many times
/// each explicit transition of a protocol occurs, regardless of order.
///
/// # Examples
///
/// ```
/// use popproto_model::{Output, ProtocolBuilder};
/// use popproto_vas::ParikhImage;
///
/// # fn main() -> Result<(), popproto_model::ProtocolError> {
/// let mut b = ProtocolBuilder::new("demo");
/// let a = b.add_state("a", Output::False);
/// let acc = b.add_state("acc", Output::True);
/// b.add_transition((a, a), (acc, acc))?;
/// b.set_input_state("x", a);
/// let p = b.build()?;
///
/// let mut pi = ParikhImage::empty(p.num_transitions());
/// pi.add(0, 2); // fire transition 0 twice
/// let ic = p.initial_config_unary(4);
/// let result = pi.apply(&p, &ic).expect("stays non-negative");
/// assert_eq!(result.counts(), &[0, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParikhImage {
    counts: Vec<u64>,
}

impl ParikhImage {
    /// The empty multiset over `num_transitions` transitions.
    pub fn empty(num_transitions: usize) -> Self {
        ParikhImage {
            counts: vec![0; num_transitions],
        }
    }

    /// Builds a Parikh image from explicit per-transition counts.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        ParikhImage { counts }
    }

    /// Builds the Parikh image of an explicit sequence of transition indices.
    pub fn from_sequence(num_transitions: usize, sequence: &[usize]) -> Self {
        let mut pi = ParikhImage::empty(num_transitions);
        for &t in sequence {
            pi.add(t, 1);
        }
        pi
    }

    /// The number of transitions the image ranges over.
    pub fn num_transitions(&self) -> usize {
        self.counts.len()
    }

    /// The multiplicity of transition `t`.
    pub fn get(&self, t: usize) -> u64 {
        self.counts[t]
    }

    /// Adds `count` occurrences of transition `t`.
    pub fn add(&mut self, t: usize, count: u64) {
        self.counts[t] += count;
    }

    /// The per-transition counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The total number of transition occurrences `|π|`.
    pub fn size(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Returns `true` if the multiset is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Pointwise sum of two Parikh images.
    ///
    /// # Panics
    ///
    /// Panics if the images range over different transition sets.
    pub fn plus(&self, other: &ParikhImage) -> ParikhImage {
        assert_eq!(self.num_transitions(), other.num_transitions());
        ParikhImage {
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// The displacement `Δπ = Σ_t π(t)·Δt` over the states of `protocol`.
    pub fn displacement(&self, protocol: &Protocol) -> ZVec {
        let n = protocol.num_states();
        let mut d = ZVec::zero(n);
        for (t_idx, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let dt = protocol.transitions()[t_idx].displacement(n);
            for (q, &delta) in dt.iter().enumerate() {
                d.set(q, d.get(q) + delta * count as i64);
            }
        }
        d
    }

    /// The potential step `C =π⇒ C'` (Section 5.1): `C' = C + Δπ`.
    ///
    /// Returns `None` if some state count would become negative — in that
    /// case no ordering of the transitions can realise the multiset from `C`.
    pub fn apply(&self, protocol: &Protocol, c: &Config) -> Option<Config> {
        let d = self.displacement(protocol);
        let mut v = ZVec::from_config(c);
        v.add_scaled(&d, 1);
        v.to_config()
    }
}

impl fmt::Display for ParikhImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⦃")?;
        let mut first = true;
        for (t, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{c}·t{t}")?;
            first = false;
        }
        if first {
            write!(f, "∅")?;
        }
        write!(f, "⦄")
    }
}

/// The displacement matrix of a protocol: one row per state, one column per
/// explicit transition, entry `(q, t) = Δt(q)`.
pub fn displacement_matrix(protocol: &Protocol) -> Vec<Vec<i64>> {
    let n = protocol.num_states();
    let m = protocol.num_transitions();
    let mut rows = vec![vec![0i64; m]; n];
    for (t_idx, t) in protocol.transitions().iter().enumerate() {
        for (q, &delta) in t.displacement(n).iter().enumerate() {
            rows[q][t_idx] = delta;
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use popproto_model::{Output, ProtocolBuilder};

    /// A 3-state protocol: 1,1 ↦ 0,2 and a,2 ↦ 2,2.
    fn counting_protocol() -> Protocol {
        let mut b = ProtocolBuilder::new("count");
        let zero = b.add_state("0", Output::False);
        let one = b.add_state("1", Output::False);
        let two = b.add_state("2", Output::True);
        b.add_transition((one, one), (zero, two)).unwrap();
        b.add_transition((zero, two), (two, two)).unwrap();
        b.add_transition((one, two), (two, two)).unwrap();
        b.set_input_state("x", one);
        b.build().unwrap()
    }

    #[test]
    fn construction_and_size() {
        let pi = ParikhImage::from_sequence(3, &[0, 0, 2]);
        assert_eq!(pi.counts(), &[2, 0, 1]);
        assert_eq!(pi.size(), 3);
        assert!(!pi.is_empty());
        assert!(ParikhImage::empty(3).is_empty());
        assert_eq!(pi.get(0), 2);
    }

    #[test]
    fn displacement_sums_transitions() {
        let p = counting_protocol();
        // Two firings of t0 (1,1 ↦ 0,2): Δ = (+2, -4, +2).
        let pi = ParikhImage::from_counts(vec![2, 0, 0]);
        assert_eq!(pi.displacement(&p).entries(), &[2, -4, 2]);
        // Mixed multiset.
        let pi = ParikhImage::from_counts(vec![1, 1, 0]);
        assert_eq!(pi.displacement(&p).entries(), &[0, -2, 2]);
    }

    #[test]
    fn apply_checks_nonnegativity() {
        let p = counting_protocol();
        let ic = p.initial_config_unary(4);
        let ok = ParikhImage::from_counts(vec![2, 0, 0]).apply(&p, &ic);
        assert_eq!(ok.unwrap().counts(), &[2, 0, 2]);
        // Firing t0 three times from 4 agents would need 6 agents in state 1.
        let too_many = ParikhImage::from_counts(vec![3, 0, 0]).apply(&p, &ic);
        assert_eq!(too_many, None);
    }

    #[test]
    fn apply_matches_sequential_firing_when_realisable() {
        let p = counting_protocol();
        let ic = p.initial_config_unary(2);
        // Fire t0 then t1: ⟨2·q1⟩ → ⟨1·q0, 1·q2⟩ → ⟨2·q2⟩.
        let after_t0 = p.transitions()[0].fire(&ic).unwrap();
        let after_t1 = p.transitions()[1].fire(&after_t0).unwrap();
        let pi = ParikhImage::from_sequence(3, &[0, 1]);
        assert_eq!(pi.apply(&p, &ic), Some(after_t1));
    }

    #[test]
    fn plus_is_pointwise() {
        let a = ParikhImage::from_counts(vec![1, 0, 2]);
        let b = ParikhImage::from_counts(vec![0, 3, 1]);
        assert_eq!(a.plus(&b).counts(), &[1, 3, 3]);
    }

    #[test]
    fn matrix_shape_and_entries() {
        let p = counting_protocol();
        let m = displacement_matrix(&p);
        assert_eq!(m.len(), 3); // states
        assert_eq!(m[0].len(), 3); // transitions
                                   // t0 = (1,1 ↦ 0,2): column 0 is (+1, -2, +1).
        assert_eq!((m[0][0], m[1][0], m[2][0]), (1, -2, 1));
        // t1 = (0,2 ↦ 2,2): column 1 is (-1, 0, +1).
        assert_eq!((m[0][1], m[1][1], m[2][1]), (-1, 0, 1));
    }

    #[test]
    fn display_hides_zero_entries() {
        let pi = ParikhImage::from_counts(vec![0, 2, 0]);
        assert_eq!(pi.to_string(), "⦃2·t1⦄");
        assert_eq!(ParikhImage::empty(2).to_string(), "⦃∅⦄");
    }
}
