//! Controlled bad sequences and their maximal lengths (Lemma 4.4).
//!
//! A sequence `v₀, v₁, v₂, …` of vectors of `N^d` is *(δ-)linearly controlled*
//! if `|vᵢ| ≤ i + δ` (here `|·|` is the 1-norm, matching the paper's use of
//! `|Cᵢ| = |L| + i`).  It is *bad* if no element embeds into a later element
//! in the pointwise order.  Controlled bad sequences are finite; their maximal
//! length grows Ackermannially in the dimension `d` (Figueira, Figueira,
//! Schmitz, Schnoebelen 2011), which is where the Theorem 4.5 bound comes from.
//!
//! This module computes the exact maximal length by exhaustive search for
//! tiny `(d, δ)` and provides a greedy heuristic for slightly larger
//! instances, so that experiment E10 can compare empirical growth against the
//! Fast-Growing-Hierarchy predictions.

use serde::{Deserialize, Serialize};

/// Search configuration for [`longest_bad_sequence`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ControlledSearch {
    /// Dimension `d` of the vectors.
    pub dimension: usize,
    /// Control offset `δ`: element `i` (0-based) must have 1-norm ≤ `i + δ`.
    pub delta: u64,
    /// Upper bound on explored search-tree nodes; the search reports whether
    /// it was truncated.
    pub node_budget: u64,
}

impl ControlledSearch {
    /// Creates a search configuration with a default node budget.
    pub fn new(dimension: usize, delta: u64) -> Self {
        ControlledSearch {
            dimension,
            delta,
            node_budget: 2_000_000,
        }
    }
}

/// Result of a controlled bad sequence search.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BadSequenceResult {
    /// The longest bad sequence found.
    pub sequence: Vec<Vec<u64>>,
    /// `true` if the search space was fully explored (the length is exact).
    pub exact: bool,
    /// Number of search nodes visited.
    pub nodes_visited: u64,
}

impl BadSequenceResult {
    /// Length of the longest bad sequence found.
    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    /// Returns `true` if no bad sequence was found (only possible for `d = 0`).
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }
}

/// Computes (exactly, within the node budget) the longest `δ`-controlled bad
/// sequence of vectors in `N^d`.
///
/// # Examples
///
/// ```
/// use popproto_vas::{longest_bad_sequence, ControlledSearch};
///
/// // Dimension 1, control i + 2: the longest bad sequence is 2, 1, 0.
/// let r = longest_bad_sequence(&ControlledSearch::new(1, 2));
/// assert!(r.exact);
/// assert_eq!(r.len(), 3);
/// ```
pub fn longest_bad_sequence(search: &ControlledSearch) -> BadSequenceResult {
    let mut best: Vec<Vec<u64>> = Vec::new();
    let mut current: Vec<Vec<u64>> = Vec::new();
    let mut nodes: u64 = 0;
    let mut truncated = false;
    extend(search, &mut current, &mut best, &mut nodes, &mut truncated);
    BadSequenceResult {
        sequence: best,
        exact: !truncated,
        nodes_visited: nodes,
    }
}

fn extend(
    search: &ControlledSearch,
    current: &mut Vec<Vec<u64>>,
    best: &mut Vec<Vec<u64>>,
    nodes: &mut u64,
    truncated: &mut bool,
) {
    if current.len() > best.len() {
        *best = current.clone();
    }
    if *truncated {
        return;
    }
    let index = current.len() as u64;
    let max_norm = index + search.delta;
    for candidate in vectors_with_norm_at_most(search.dimension, max_norm) {
        *nodes += 1;
        if *nodes > search.node_budget {
            *truncated = true;
            return;
        }
        // The candidate must not dominate any earlier element (else the
        // sequence would be good) — i.e. no earlier element embeds into it.
        if current.iter().all(|earlier| !le(earlier, &candidate)) {
            current.push(candidate);
            extend(search, current, best, nodes, truncated);
            current.pop();
            if *truncated {
                return;
            }
        }
    }
}

fn le(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

/// Enumerates all vectors of `N^d` with 1-norm at most `max_norm`.
fn vectors_with_norm_at_most(dim: usize, max_norm: u64) -> Vec<Vec<u64>> {
    let mut out = Vec::new();
    let mut current = vec![0u64; dim];
    enumerate_rec(dim, max_norm, 0, &mut current, &mut out);
    out
}

fn enumerate_rec(
    dim: usize,
    budget: u64,
    pos: usize,
    current: &mut Vec<u64>,
    out: &mut Vec<Vec<u64>>,
) {
    if pos == dim {
        out.push(current.clone());
        return;
    }
    for v in 0..=budget {
        current[pos] = v;
        enumerate_rec(dim, budget - v, pos + 1, current, out);
    }
    current[pos] = 0;
}

/// The closed-form maximal length of a δ-controlled bad sequence in dimension 1.
///
/// In dimension 1 a bad sequence is strictly decreasing, and the first element
/// is at most `δ`, so the maximal length is `δ + 1`.
pub fn max_bad_sequence_length_dim1(delta: u64) -> u64 {
    delta + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_one_matches_closed_form() {
        for delta in 0..5 {
            let r = longest_bad_sequence(&ControlledSearch::new(1, delta));
            assert!(r.exact);
            assert_eq!(r.len() as u64, max_bad_sequence_length_dim1(delta));
        }
    }

    #[test]
    fn found_sequences_are_bad_and_controlled() {
        let search = ControlledSearch::new(2, 1);
        let r = longest_bad_sequence(&search);
        assert!(r.exact);
        // Controlled: ‖v_i‖₁ ≤ i + δ.
        for (i, v) in r.sequence.iter().enumerate() {
            let norm: u64 = v.iter().sum();
            assert!(norm <= i as u64 + search.delta);
        }
        // Bad: no earlier element embeds into a later one.
        for i in 0..r.sequence.len() {
            for j in (i + 1)..r.sequence.len() {
                assert!(!le(&r.sequence[i], &r.sequence[j]));
            }
        }
    }

    #[test]
    fn dimension_two_is_strictly_longer_than_dimension_one() {
        let d1 = longest_bad_sequence(&ControlledSearch::new(1, 2));
        let d2 = longest_bad_sequence(&ControlledSearch::new(2, 2));
        assert!(
            d2.len() > d1.len(),
            "d2 = {} should exceed d1 = {}",
            d2.len(),
            d1.len()
        );
    }

    #[test]
    fn budget_truncation_is_reported() {
        let mut search = ControlledSearch::new(3, 3);
        search.node_budget = 50;
        let r = longest_bad_sequence(&search);
        assert!(!r.exact);
        assert!(r.nodes_visited >= 50);
    }

    #[test]
    fn vector_enumeration_counts() {
        // Vectors in N^2 with 1-norm ≤ 2: (0,0),(0,1),(0,2),(1,0),(1,1),(2,0) = 6.
        assert_eq!(vectors_with_norm_at_most(2, 2).len(), 6);
        // Norm ≤ n in dimension 1: n+1 vectors.
        assert_eq!(vectors_with_norm_at_most(1, 4).len(), 5);
    }

    #[test]
    fn zero_dimension_has_trivial_sequences() {
        let r = longest_bad_sequence(&ControlledSearch::new(0, 3));
        // The only vector is the empty vector, and it embeds into itself, so
        // the longest bad sequence has length 1.
        assert_eq!(r.len(), 1);
        assert!(r.exact);
    }
}
