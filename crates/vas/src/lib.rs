//! Vector-addition-system substrate for the state-complexity analysis of
//! population protocols.
//!
//! Population protocols are a subclass of vector addition systems (VAS): a
//! transition `p,q ↦ p',q'` has a *displacement* vector `Δt = p'+q'-p-q`, the
//! effect of a multiset `π` of transitions is `Δπ = Σ_t π(t)·Δt`, and many of
//! the paper's arguments are phrased purely in terms of these vectors:
//!
//! * **Parikh images and potential reachability** (`C =π⇒ C'`, Section 5.1)
//!   — module [`parikh`];
//! * **Dickson's lemma** and ordered subsequences of configuration sequences
//!   (Section 4) — module [`dickson`];
//! * **Controlled bad sequences** and their maximal lengths (Lemma 4.4)
//!   — module [`controlled`];
//! * **Downward-closed sets** and their `(B, S)` bases (Section 3)
//!   — module [`dclosed`];
//! * **Hilbert bases** of homogeneous Diophantine systems (Pottier's theorem,
//!   Section 5.4) — modules [`hilbert`] and [`pottier`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controlled;
pub mod dclosed;
pub mod dickson;
pub mod hilbert;
pub mod parikh;
pub mod pottier;
pub mod vector;

pub use controlled::{longest_bad_sequence, ControlledSearch};
pub use dclosed::{BasisElement, DownwardClosedSet, Ideal};
pub use dickson::{extract_increasing_subsequence, find_increasing_pair};
pub use hilbert::{hilbert_basis_equalities, hilbert_basis_inequalities, HilbertOptions};
pub use parikh::{displacement_matrix, ParikhImage};
pub use pottier::{pottier_constant, pottier_constant_deterministic, RealisabilitySystem};
pub use vector::ZVec;
