//! Hilbert bases of homogeneous linear Diophantine systems.
//!
//! Pottier's small basis theorem (Theorem 5.6 of the paper) bounds the
//! 1-norm of the minimal solutions of a homogeneous system `A·y ≥ 0` over the
//! naturals.  This module computes those minimal solutions exactly with the
//! Contejean–Devie algorithm, so that experiment E5 can compare the actual
//! basis against the Pottier bound `(1 + max_i Σ_j |a_ij|)^e`.
//!
//! Two entry points are provided:
//!
//! * [`hilbert_basis_equalities`] — minimal non-zero solutions of `A·y = 0`;
//! * [`hilbert_basis_inequalities`] — a generating set of the solutions of
//!   `A·y ≥ 0`, obtained by introducing slack variables and projecting.

use crate::vector::ZVec;
use serde::{Deserialize, Serialize};

/// Options controlling the Contejean–Devie search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HilbertOptions {
    /// Maximum number of frontier extensions before the search gives up.
    pub node_budget: u64,
    /// Maximum 1-norm of candidate solutions (a safety net; `None` = unlimited).
    pub norm_limit: Option<u64>,
}

impl Default for HilbertOptions {
    fn default() -> Self {
        HilbertOptions {
            node_budget: 5_000_000,
            norm_limit: None,
        }
    }
}

/// Result of a Hilbert-basis computation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HilbertBasis {
    /// The minimal solutions found (each a vector over the variables).
    pub solutions: Vec<Vec<u64>>,
    /// `true` if the search completed within its budget (the basis is exact
    /// and complete); `false` if it was truncated.
    pub complete: bool,
    /// Number of candidate vectors examined.
    pub nodes_visited: u64,
}

impl HilbertBasis {
    /// The largest 1-norm over all solutions in the basis.
    pub fn max_norm1(&self) -> u64 {
        self.solutions
            .iter()
            .map(|s| s.iter().sum::<u64>())
            .max()
            .unwrap_or(0)
    }

    /// Number of solutions in the basis.
    pub fn len(&self) -> usize {
        self.solutions.len()
    }

    /// Returns `true` if the basis is empty (the only solution of the system is 0).
    pub fn is_empty(&self) -> bool {
        self.solutions.is_empty()
    }
}

/// Computes the minimal non-zero solutions of `A·y = 0`, `y ∈ N^v`, by the
/// Contejean–Devie algorithm.
///
/// `matrix` is given row-major: `matrix[i][j]` is the coefficient of variable
/// `j` in equation `i`.  All rows must have the same length.
///
/// # Examples
///
/// ```
/// use popproto_vas::{hilbert_basis_equalities, HilbertOptions};
///
/// // x0 - x1 = 0 over N²: the unique minimal solution is (1, 1).
/// let basis = hilbert_basis_equalities(&[vec![1, -1]], &HilbertOptions::default());
/// assert!(basis.complete);
/// assert_eq!(basis.solutions, vec![vec![1, 1]]);
/// ```
pub fn hilbert_basis_equalities(matrix: &[Vec<i64>], options: &HilbertOptions) -> HilbertBasis {
    let num_vars = matrix.first().map_or(0, Vec::len);
    if num_vars == 0 {
        return HilbertBasis {
            solutions: Vec::new(),
            complete: true,
            nodes_visited: 0,
        };
    }
    // Column vectors a_j = A·e_j.
    let columns: Vec<ZVec> = (0..num_vars)
        .map(|j| ZVec::from(matrix.iter().map(|row| row[j]).collect::<Vec<_>>()))
        .collect();

    let mut minimal: Vec<Vec<u64>> = Vec::new();
    // Frontier of (candidate, value A·candidate) pairs.
    let mut frontier: Vec<(Vec<u64>, ZVec)> = (0..num_vars)
        .map(|j| {
            let mut t = vec![0u64; num_vars];
            t[j] = 1;
            (t, columns[j].clone())
        })
        .collect();

    let mut nodes: u64 = 0;
    let mut complete = true;

    while !frontier.is_empty() {
        let mut next = Vec::new();
        // Dedupe per level through a hash set: the previous linear scan of
        // the next-level frontier was quadratic and dominated the runtime on
        // systems with ~20 variables (the invariant cones of the symbolic
        // verifier).
        let mut queued: std::collections::HashSet<Vec<u64>> = std::collections::HashSet::new();
        for (t, value) in frontier {
            nodes += 1;
            if nodes > options.node_budget {
                complete = false;
                break;
            }
            if value.is_zero() {
                if !minimal.iter().any(|m| dominated_by(&t, m)) {
                    minimal.retain(|m| !dominated_by(m, &t));
                    minimal.push(t);
                }
                continue;
            }
            // Branch: extend by e_j whenever the value moves toward the origin.
            for (j, col) in columns.iter().enumerate() {
                if value.dot(col) < 0 {
                    let mut t2 = t.clone();
                    t2[j] += 1;
                    if let Some(limit) = options.norm_limit {
                        if t2.iter().sum::<u64>() > limit {
                            continue;
                        }
                    }
                    if minimal.iter().any(|m| dominated_by(m, &t2)) {
                        continue;
                    }
                    if queued.insert(t2.clone()) {
                        let mut v2 = value.clone();
                        v2.add_scaled(col, 1);
                        next.push((t2, v2));
                    }
                }
            }
        }
        if !complete {
            break;
        }
        frontier = next;
    }

    // The loop may have added non-minimal solutions before smaller ones were
    // found; minimise once more for safety.
    let mut result: Vec<Vec<u64>> = Vec::new();
    for s in minimal {
        if !result.iter().any(|m| dominated_by(m, &s) && *m != s) {
            result.retain(|m| !(dominated_by(&s, m) && *m != s));
            result.push(s);
        }
    }
    result.sort();
    HilbertBasis {
        solutions: result,
        complete,
        nodes_visited: nodes,
    }
}

/// Computes a generating set of the solutions of `A·y ≥ 0`, `y ∈ N^v`.
///
/// Slack variables turn the system into the equalities `A·y − s = 0`; the
/// Hilbert basis of the extended system is computed and projected onto the
/// `y` variables.  Every solution of `A·y ≥ 0` is a sum of projected basis
/// elements (the property needed by Lemma 5.8); the projection is minimised
/// and deduplicated before being returned.
pub fn hilbert_basis_inequalities(matrix: &[Vec<i64>], options: &HilbertOptions) -> HilbertBasis {
    let num_vars = matrix.first().map_or(0, Vec::len);
    let num_eqs = matrix.len();
    if num_eqs == 0 || num_vars == 0 {
        // No constraints: the unit vectors generate everything.
        let solutions = (0..num_vars)
            .map(|j| {
                let mut v = vec![0u64; num_vars];
                v[j] = 1;
                v
            })
            .collect();
        return HilbertBasis {
            solutions,
            complete: true,
            nodes_visited: 0,
        };
    }
    // Extended system [A | -I]·(y, s) = 0.
    let extended: Vec<Vec<i64>> = matrix
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let mut r = row.clone();
            for k in 0..num_eqs {
                r.push(if k == i { -1 } else { 0 });
            }
            r
        })
        .collect();
    let basis = hilbert_basis_equalities(&extended, options);
    // Project onto the original variables and drop zero projections.  The
    // projections are *not* minimised further: a dominated projection can
    // still be needed as a generator, because the difference of two solutions
    // of `A·y ≥ 0` need not be a solution.
    let mut projected: Vec<Vec<u64>> = Vec::new();
    for sol in &basis.solutions {
        let y = sol[..num_vars].to_vec();
        if y.iter().all(|&v| v == 0) {
            continue;
        }
        if projected.contains(&y) {
            continue;
        }
        projected.push(y);
    }
    projected.sort();
    HilbertBasis {
        solutions: projected,
        complete: basis.complete,
        nodes_visited: basis.nodes_visited,
    }
}

/// Returns `true` if `smaller ≤ larger` pointwise.
fn dominated_by(smaller: &[u64], larger: &[u64]) -> bool {
    smaller.iter().zip(larger).all(|(a, b)| a <= b)
}

/// Checks that `candidate` is a solution of `A·y ≥ 0` (used by tests and
/// property checks).
pub fn is_solution_inequalities(matrix: &[Vec<i64>], candidate: &[u64]) -> bool {
    matrix.iter().all(|row| {
        row.iter()
            .zip(candidate)
            .map(|(&a, &x)| a as i128 * x as i128)
            .sum::<i128>()
            >= 0
    })
}

/// Checks that `candidate` is a solution of `A·y = 0`.
pub fn is_solution_equalities(matrix: &[Vec<i64>], candidate: &[u64]) -> bool {
    matrix.iter().all(|row| {
        row.iter()
            .zip(candidate)
            .map(|(&a, &x)| a as i128 * x as i128)
            .sum::<i128>()
            == 0
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_equation_balance() {
        // x0 - x1 = 0.
        let basis = hilbert_basis_equalities(&[vec![1, -1]], &HilbertOptions::default());
        assert!(basis.complete);
        assert_eq!(basis.solutions, vec![vec![1, 1]]);
    }

    #[test]
    fn weighted_balance_equation() {
        // 2·x0 - 3·x1 = 0: minimal solution (3, 2).
        let basis = hilbert_basis_equalities(&[vec![2, -3]], &HilbertOptions::default());
        assert!(basis.complete);
        assert_eq!(basis.solutions, vec![vec![3, 2]]);
    }

    #[test]
    fn two_equations() {
        // x0 = x1 and x1 = x2: minimal solution (1,1,1).
        let basis = hilbert_basis_equalities(
            &[vec![1, -1, 0], vec![0, 1, -1]],
            &HilbertOptions::default(),
        );
        assert!(basis.complete);
        assert_eq!(basis.solutions, vec![vec![1, 1, 1]]);
    }

    #[test]
    fn classic_three_variable_example() {
        // x0 + x1 - x2 = 0: minimal solutions (1,0,1) and (0,1,1).
        let basis = hilbert_basis_equalities(&[vec![1, 1, -1]], &HilbertOptions::default());
        assert!(basis.complete);
        assert_eq!(basis.solutions, vec![vec![0, 1, 1], vec![1, 0, 1]]);
    }

    #[test]
    fn infeasible_system_has_empty_basis() {
        // x0 + 1·x1 = 0 has only the zero solution; with all-positive row no
        // non-zero natural solution exists.
        let basis = hilbert_basis_equalities(&[vec![1, 1]], &HilbertOptions::default());
        assert!(basis.complete);
        assert!(basis.is_empty());
    }

    #[test]
    fn solutions_are_solutions_and_incomparable() {
        let matrix = vec![vec![3, -1, -2, 0], vec![0, 1, -1, -1]];
        let basis = hilbert_basis_equalities(&matrix, &HilbertOptions::default());
        assert!(basis.complete);
        assert!(!basis.is_empty());
        for s in &basis.solutions {
            assert!(
                is_solution_equalities(&matrix, s),
                "{s:?} is not a solution"
            );
        }
        for a in &basis.solutions {
            for b in &basis.solutions {
                if a != b {
                    assert!(!dominated_by(a, b), "{a:?} ≤ {b:?}: basis not minimal");
                }
            }
        }
    }

    #[test]
    fn inequalities_unconstrained() {
        let basis = hilbert_basis_inequalities(&[], &HilbertOptions::default());
        assert!(basis.complete);
        assert!(basis.is_empty());
    }

    #[test]
    fn inequalities_simple() {
        // x0 - x1 ≥ 0: generators (1, 0) and (1, 1).
        let basis = hilbert_basis_inequalities(&[vec![1, -1]], &HilbertOptions::default());
        assert!(basis.complete);
        for s in &basis.solutions {
            assert!(is_solution_inequalities(&[vec![1, -1]], s));
        }
        assert!(basis.solutions.contains(&vec![1, 0]));
        assert!(basis.solutions.contains(&vec![1, 1]));
        assert_eq!(basis.len(), 2);
    }

    #[test]
    fn inequalities_generate_all_small_solutions() {
        // x0 + x1 - 2·x2 ≥ 0.  Every solution must decompose as a sum of
        // generators; we check all solutions with entries ≤ 3.
        let matrix = vec![vec![1, 1, -2]];
        let basis = hilbert_basis_inequalities(&matrix, &HilbertOptions::default());
        assert!(basis.complete);
        for x0 in 0..=3u64 {
            for x1 in 0..=3u64 {
                for x2 in 0..=3u64 {
                    let v = [x0, x1, x2];
                    if !is_solution_inequalities(&matrix, &v) {
                        continue;
                    }
                    assert!(
                        decomposes(&v, &basis.solutions),
                        "{v:?} is not a sum of generators {:?}",
                        basis.solutions
                    );
                }
            }
        }
    }

    /// Checks whether `target` is a non-negative integer combination of `gens`
    /// by bounded search.
    fn decomposes(target: &[u64], gens: &[Vec<u64>]) -> bool {
        fn rec(target: &[u64], gens: &[Vec<u64>]) -> bool {
            if target.iter().all(|&x| x == 0) {
                return true;
            }
            for g in gens {
                if g.iter().zip(target).all(|(a, b)| a <= b) {
                    let rest: Vec<u64> = target.iter().zip(g).map(|(a, b)| a - b).collect();
                    if rec(&rest, gens) {
                        return true;
                    }
                }
            }
            false
        }
        rec(target, gens)
    }

    #[test]
    fn budget_truncation_reported() {
        let options = HilbertOptions {
            node_budget: 3,
            ..HilbertOptions::default()
        };
        let basis = hilbert_basis_equalities(&[vec![5, -7, 3, -2]], &options);
        assert!(!basis.complete);
    }

    #[test]
    fn norm_limit_is_respected() {
        let options = HilbertOptions {
            norm_limit: Some(2),
            ..HilbertOptions::default()
        };
        // 2·x0 - 3·x1 = 0 needs norm 5, which the limit forbids.
        let basis = hilbert_basis_equalities(&[vec![2, -3]], &options);
        assert!(basis.is_empty());
    }

    #[test]
    fn max_norm_reporting() {
        let basis = hilbert_basis_equalities(&[vec![2, -3]], &HilbertOptions::default());
        assert_eq!(basis.max_norm1(), 5);
        assert_eq!(
            HilbertBasis {
                solutions: vec![],
                complete: true,
                nodes_visited: 0
            }
            .max_norm1(),
            0
        );
    }
}
