//! Downward-closed sets of configurations and their bases (Section 3).
//!
//! The paper represents a downward-closed set `C` by a finite *base* of
//! elements `(B, S)` with `B + N^S ⊆ C` and `C = ⋃ (B + N^S)`; the norm of a
//! basis element is `‖B‖_∞`.  An equivalent, often more convenient
//! representation uses *ideals*: downward closures of `ω`-configurations
//! `↓u` with `u ∈ (N ∪ {ω})^Q`.  Both representations are provided:
//!
//! * [`BasisElement`] — the paper's `(B, S)` pairs, used by the pumping
//!   certificates of Lemmas 4.1 and 5.2;
//! * [`Ideal`] and [`DownwardClosedSet`] — the ideal representation, used to
//!   store and compare stable sets computed by the `reach` crate.

use popproto_model::{Config, StateId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A basis element `(B, S)` of a downward-closed set: the set of
/// configurations `B + N^S` (Section 3).
///
/// # Examples
///
/// ```
/// use popproto_model::{Config, StateId};
/// use popproto_vas::BasisElement;
///
/// let base = Config::from_counts(vec![1, 0, 2]);
/// let elem = BasisElement::new(base, [StateId::new(2)]);
/// assert!(elem.contains(&Config::from_counts(vec![1, 0, 7])));
/// assert!(!elem.contains(&Config::from_counts(vec![2, 0, 7])));
/// assert_eq!(elem.norm(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BasisElement {
    base: Config,
    omega: BTreeSet<StateId>,
}

impl BasisElement {
    /// Creates the basis element `(B, S)`.
    pub fn new(base: Config, omega: impl IntoIterator<Item = StateId>) -> Self {
        BasisElement {
            base,
            omega: omega.into_iter().collect(),
        }
    }

    /// The base configuration `B`.
    pub fn base(&self) -> &Config {
        &self.base
    }

    /// The set `S` of states whose counts may grow unboundedly.
    pub fn omega_states(&self) -> impl Iterator<Item = StateId> + '_ {
        self.omega.iter().copied()
    }

    /// The set `S` as a vector.
    pub fn omega_vec(&self) -> Vec<StateId> {
        self.omega.iter().copied().collect()
    }

    /// The norm `‖(B, S)‖_∞ = ‖B‖_∞`.
    pub fn norm(&self) -> u64 {
        self.base.norm_inf()
    }

    /// Membership test: `c ∈ B + N^S`, i.e. `c(q) = B(q)` outside `S` and
    /// `c(q) ≥ B(q)` on `S`.
    pub fn contains(&self, c: &Config) -> bool {
        if c.num_states() != self.base.num_states() {
            return false;
        }
        for q in (0..c.num_states()).map(StateId::new) {
            if self.omega.contains(&q) {
                if c.get(q) < self.base.get(q) {
                    return false;
                }
            } else if c.get(q) != self.base.get(q) {
                return false;
            }
        }
        true
    }

    /// The "difference" `D = c − B ∈ N^S` witnessing membership, if `c`
    /// belongs to the element.
    pub fn witness(&self, c: &Config) -> Option<Config> {
        if !self.contains(c) {
            return None;
        }
        c.checked_minus(&self.base)
    }

    /// Constructs a basis element from a configuration by the Lemma 3.2
    /// recipe: states with more than `threshold` agents become `ω`-states,
    /// and their base count is truncated to `threshold`.
    pub fn from_config_with_threshold(c: &Config, threshold: u64) -> Self {
        let mut base = c.clone();
        let mut omega = BTreeSet::new();
        for (q, count) in c.iter() {
            if count > threshold {
                base.set(q, threshold);
                omega.insert(q);
            }
        }
        BasisElement { base, omega }
    }
}

impl fmt::Display for BasisElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {{", self.base)?;
        for (i, q) in self.omega.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{q}")?;
        }
        write!(f, "}})")
    }
}

/// An ideal `↓u`: the set of configurations pointwise below an
/// `ω`-configuration `u` (entries are either a finite bound or unbounded).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ideal {
    /// `Some(k)` bounds the state by `k`; `None` means unbounded (ω).
    bounds: Vec<Option<u64>>,
}

impl Ideal {
    /// Creates an ideal from per-state bounds (`None` = ω).
    pub fn new(bounds: Vec<Option<u64>>) -> Self {
        Ideal { bounds }
    }

    /// The ideal containing exactly the downward closure of a configuration.
    pub fn below(c: &Config) -> Self {
        Ideal {
            bounds: c.counts().iter().map(|&x| Some(x)).collect(),
        }
    }

    /// The full ideal (no constraints) over `num_states` states.
    pub fn full(num_states: usize) -> Self {
        Ideal {
            bounds: vec![None; num_states],
        }
    }

    /// The per-state bounds.
    pub fn bounds(&self) -> &[Option<u64>] {
        &self.bounds
    }

    /// The dimension (number of states).
    pub fn num_states(&self) -> usize {
        self.bounds.len()
    }

    /// Membership test.
    pub fn contains(&self, c: &Config) -> bool {
        if c.num_states() != self.bounds.len() {
            return false;
        }
        self.bounds
            .iter()
            .enumerate()
            .all(|(q, b)| b.is_none_or(|limit| c.get(StateId::new(q)) <= limit))
    }

    /// Inclusion test `self ⊆ other`.
    pub fn included_in(&self, other: &Ideal) -> bool {
        assert_eq!(self.num_states(), other.num_states(), "dimension mismatch");
        self.bounds
            .iter()
            .zip(&other.bounds)
            .all(|(a, b)| match (a, b) {
                (_, None) => true,
                (None, Some(_)) => false,
                (Some(x), Some(y)) => x <= y,
            })
    }

    /// The norm: the largest finite bound (0 if all bounds are ω or 0).
    pub fn norm(&self) -> u64 {
        self.bounds.iter().filter_map(|b| *b).max().unwrap_or(0)
    }
}

impl fmt::Display for Ideal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "↓⟨")?;
        for (i, b) in self.bounds.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match b {
                Some(k) => write!(f, "{k}")?,
                None => write!(f, "ω")?,
            }
        }
        write!(f, "⟩")
    }
}

/// A downward-closed set represented as a finite union of ideals.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct DownwardClosedSet {
    ideals: Vec<Ideal>,
}

impl DownwardClosedSet {
    /// The empty set.
    pub fn empty() -> Self {
        DownwardClosedSet { ideals: Vec::new() }
    }

    /// A set consisting of a single ideal.
    pub fn from_ideal(ideal: Ideal) -> Self {
        DownwardClosedSet {
            ideals: vec![ideal],
        }
    }

    /// The ideals of the (minimised) representation.
    pub fn ideals(&self) -> &[Ideal] {
        &self.ideals
    }

    /// Number of ideals in the representation.
    pub fn len(&self) -> usize {
        self.ideals.len()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ideals.is_empty()
    }

    /// Adds an ideal, keeping the representation minimal (no ideal included
    /// in another).
    pub fn insert(&mut self, ideal: Ideal) {
        if self
            .ideals
            .iter()
            .any(|existing| ideal.included_in(existing))
        {
            return;
        }
        self.ideals.retain(|existing| !existing.included_in(&ideal));
        self.ideals.push(ideal);
    }

    /// Adds the downward closure of a configuration.
    pub fn insert_config(&mut self, c: &Config) {
        self.insert(Ideal::below(c));
    }

    /// Membership test.
    pub fn contains(&self, c: &Config) -> bool {
        self.ideals.iter().any(|i| i.contains(c))
    }

    /// Union of two sets.
    pub fn union(&self, other: &DownwardClosedSet) -> DownwardClosedSet {
        let mut out = self.clone();
        for i in &other.ideals {
            out.insert(i.clone());
        }
        out
    }

    /// Inclusion test `self ⊆ other`.
    pub fn included_in(&self, other: &DownwardClosedSet) -> bool {
        self.ideals
            .iter()
            .all(|i| other.ideals.iter().any(|j| i.included_in(j)))
    }

    /// The largest finite bound over all ideals (a norm for the representation).
    pub fn norm(&self) -> u64 {
        self.ideals.iter().map(Ideal::norm).max().unwrap_or(0)
    }
}

impl fmt::Display for DownwardClosedSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ideals.is_empty() {
            return write!(f, "∅");
        }
        for (i, ideal) in self.ideals.iter().enumerate() {
            if i > 0 {
                write!(f, " ∪ ")?;
            }
            write!(f, "{ideal}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(counts: &[u64]) -> Config {
        Config::from_counts(counts.to_vec())
    }

    #[test]
    fn basis_element_membership() {
        let elem = BasisElement::new(cfg(&[1, 2, 0]), [StateId::new(1)]);
        assert!(elem.contains(&cfg(&[1, 2, 0])));
        assert!(elem.contains(&cfg(&[1, 9, 0])));
        assert!(!elem.contains(&cfg(&[1, 1, 0]))); // below base on an ω-state
        assert!(!elem.contains(&cfg(&[0, 2, 0]))); // differs outside S
        assert!(!elem.contains(&cfg(&[1, 2, 1]))); // differs outside S
        assert!(!elem.contains(&cfg(&[1, 2]))); // wrong dimension
    }

    #[test]
    fn basis_element_witness() {
        let elem = BasisElement::new(cfg(&[1, 2, 0]), [StateId::new(1)]);
        let w = elem.witness(&cfg(&[1, 7, 0])).unwrap();
        assert_eq!(w.counts(), &[0, 5, 0]);
        assert!(elem.witness(&cfg(&[0, 7, 0])).is_none());
    }

    #[test]
    fn basis_element_from_threshold() {
        let c = cfg(&[1, 100, 3]);
        let elem = BasisElement::from_config_with_threshold(&c, 10);
        assert_eq!(elem.base().counts(), &[1, 10, 3]);
        assert_eq!(elem.omega_vec(), vec![StateId::new(1)]);
        assert!(elem.contains(&c));
        assert_eq!(elem.norm(), 10);
    }

    #[test]
    fn ideal_membership_and_inclusion() {
        let i = Ideal::new(vec![Some(2), None]);
        assert!(i.contains(&cfg(&[2, 100])));
        assert!(!i.contains(&cfg(&[3, 0])));
        let j = Ideal::new(vec![Some(5), None]);
        assert!(i.included_in(&j));
        assert!(!j.included_in(&i));
        assert!(i.included_in(&Ideal::full(2)));
        assert!(!Ideal::full(2).included_in(&i));
        assert_eq!(i.norm(), 2);
    }

    #[test]
    fn ideal_below_configuration() {
        let i = Ideal::below(&cfg(&[1, 2]));
        assert!(i.contains(&cfg(&[1, 2])));
        assert!(i.contains(&cfg(&[0, 0])));
        assert!(!i.contains(&cfg(&[2, 2])));
    }

    #[test]
    fn set_insert_keeps_minimal_representation() {
        let mut s = DownwardClosedSet::empty();
        s.insert(Ideal::new(vec![Some(1), Some(1)]));
        s.insert(Ideal::new(vec![Some(2), Some(2)])); // absorbs the first
        assert_eq!(s.len(), 1);
        s.insert(Ideal::new(vec![Some(1), Some(1)])); // already included
        assert_eq!(s.len(), 1);
        s.insert(Ideal::new(vec![Some(0), None])); // incomparable
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn set_membership_union_inclusion() {
        let mut a = DownwardClosedSet::empty();
        a.insert_config(&cfg(&[2, 0]));
        let mut b = DownwardClosedSet::empty();
        b.insert_config(&cfg(&[0, 2]));
        assert!(a.contains(&cfg(&[1, 0])));
        assert!(!a.contains(&cfg(&[0, 1])));
        let u = a.union(&b);
        assert!(u.contains(&cfg(&[1, 0])));
        assert!(u.contains(&cfg(&[0, 1])));
        assert!(a.included_in(&u));
        assert!(b.included_in(&u));
        assert!(!u.included_in(&a));
        assert_eq!(u.norm(), 2);
    }

    #[test]
    fn empty_set_behaviour() {
        let s = DownwardClosedSet::empty();
        assert!(s.is_empty());
        assert!(!s.contains(&cfg(&[0, 0])));
        assert_eq!(s.to_string(), "∅");
        assert_eq!(s.norm(), 0);
    }

    #[test]
    fn display_forms() {
        let elem = BasisElement::new(cfg(&[1, 0]), [StateId::new(1)]);
        assert_eq!(elem.to_string(), "(⟨1·q0⟩, {q1})");
        let i = Ideal::new(vec![Some(3), None]);
        assert_eq!(i.to_string(), "↓⟨3, ω⟩");
    }
}
