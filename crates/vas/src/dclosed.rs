//! Downward-closed sets of configurations and their bases (Section 3).
//!
//! The paper represents a downward-closed set `C` by a finite *base* of
//! elements `(B, S)` with `B + N^S ⊆ C` and `C = ⋃ (B + N^S)`; the norm of a
//! basis element is `‖B‖_∞`.  An equivalent, often more convenient
//! representation uses *ideals*: downward closures of `ω`-configurations
//! `↓u` with `u ∈ (N ∪ {ω})^Q`.  Both representations are provided:
//!
//! * [`BasisElement`] — the paper's `(B, S)` pairs, used by the pumping
//!   certificates of Lemmas 4.1 and 5.2;
//! * [`Ideal`] and [`DownwardClosedSet`] — the ideal representation, used to
//!   store and compare stable sets computed by the `reach` crate.

use popproto_model::{Config, StateId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A basis element `(B, S)` of a downward-closed set: the set of
/// configurations `B + N^S` (Section 3).
///
/// # Examples
///
/// ```
/// use popproto_model::{Config, StateId};
/// use popproto_vas::BasisElement;
///
/// let base = Config::from_counts(vec![1, 0, 2]);
/// let elem = BasisElement::new(base, [StateId::new(2)]);
/// assert!(elem.contains(&Config::from_counts(vec![1, 0, 7])));
/// assert!(!elem.contains(&Config::from_counts(vec![2, 0, 7])));
/// assert_eq!(elem.norm(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BasisElement {
    base: Config,
    omega: BTreeSet<StateId>,
}

impl BasisElement {
    /// Creates the basis element `(B, S)`.
    pub fn new(base: Config, omega: impl IntoIterator<Item = StateId>) -> Self {
        BasisElement {
            base,
            omega: omega.into_iter().collect(),
        }
    }

    /// The base configuration `B`.
    pub fn base(&self) -> &Config {
        &self.base
    }

    /// The set `S` of states whose counts may grow unboundedly.
    pub fn omega_states(&self) -> impl Iterator<Item = StateId> + '_ {
        self.omega.iter().copied()
    }

    /// The set `S` as a vector.
    pub fn omega_vec(&self) -> Vec<StateId> {
        self.omega.iter().copied().collect()
    }

    /// The norm `‖(B, S)‖_∞ = ‖B‖_∞`.
    pub fn norm(&self) -> u64 {
        self.base.norm_inf()
    }

    /// Membership test: `c ∈ B + N^S`, i.e. `c(q) = B(q)` outside `S` and
    /// `c(q) ≥ B(q)` on `S`.
    pub fn contains(&self, c: &Config) -> bool {
        if c.num_states() != self.base.num_states() {
            return false;
        }
        for q in (0..c.num_states()).map(StateId::new) {
            if self.omega.contains(&q) {
                if c.get(q) < self.base.get(q) {
                    return false;
                }
            } else if c.get(q) != self.base.get(q) {
                return false;
            }
        }
        true
    }

    /// The "difference" `D = c − B ∈ N^S` witnessing membership, if `c`
    /// belongs to the element.
    pub fn witness(&self, c: &Config) -> Option<Config> {
        if !self.contains(c) {
            return None;
        }
        c.checked_minus(&self.base)
    }

    /// Constructs a basis element from a configuration by the Lemma 3.2
    /// recipe: states with more than `threshold` agents become `ω`-states,
    /// and their base count is truncated to `threshold`.
    pub fn from_config_with_threshold(c: &Config, threshold: u64) -> Self {
        let mut base = c.clone();
        let mut omega = BTreeSet::new();
        for (q, count) in c.iter() {
            if count > threshold {
                base.set(q, threshold);
                omega.insert(q);
            }
        }
        BasisElement { base, omega }
    }
}

impl fmt::Display for BasisElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {{", self.base)?;
        for (i, q) in self.omega.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{q}")?;
        }
        write!(f, "}})")
    }
}

/// An ideal `↓u`: the set of configurations pointwise below an
/// `ω`-configuration `u` (entries are either a finite bound or unbounded).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ideal {
    /// `Some(k)` bounds the state by `k`; `None` means unbounded (ω).
    bounds: Vec<Option<u64>>,
}

impl Ideal {
    /// Creates an ideal from per-state bounds (`None` = ω).
    pub fn new(bounds: Vec<Option<u64>>) -> Self {
        Ideal { bounds }
    }

    /// The ideal containing exactly the downward closure of a configuration.
    pub fn below(c: &Config) -> Self {
        Ideal {
            bounds: c.counts().iter().map(|&x| Some(x)).collect(),
        }
    }

    /// The full ideal (no constraints) over `num_states` states.
    pub fn full(num_states: usize) -> Self {
        Ideal {
            bounds: vec![None; num_states],
        }
    }

    /// The per-state bounds.
    pub fn bounds(&self) -> &[Option<u64>] {
        &self.bounds
    }

    /// The dimension (number of states).
    pub fn num_states(&self) -> usize {
        self.bounds.len()
    }

    /// Membership test.
    pub fn contains(&self, c: &Config) -> bool {
        if c.num_states() != self.bounds.len() {
            return false;
        }
        self.bounds
            .iter()
            .enumerate()
            .all(|(q, b)| b.is_none_or(|limit| c.get(StateId::new(q)) <= limit))
    }

    /// Inclusion test `self ⊆ other`.
    pub fn included_in(&self, other: &Ideal) -> bool {
        assert_eq!(self.num_states(), other.num_states(), "dimension mismatch");
        self.bounds
            .iter()
            .zip(&other.bounds)
            .all(|(a, b)| match (a, b) {
                (_, None) => true,
                (None, Some(_)) => false,
                (Some(x), Some(y)) => x <= y,
            })
    }

    /// The norm: the largest finite bound (0 if all bounds are ω or 0).
    pub fn norm(&self) -> u64 {
        self.bounds.iter().filter_map(|b| *b).max().unwrap_or(0)
    }

    /// The intersection `↓u ∩ ↓v = ↓(u ⊓ v)`: ideals are closed under
    /// intersection, with the pointwise minimum of the bounds (`ω` is the
    /// neutral element).
    pub fn intersect(&self, other: &Ideal) -> Ideal {
        assert_eq!(self.num_states(), other.num_states(), "dimension mismatch");
        Ideal {
            bounds: self
                .bounds
                .iter()
                .zip(&other.bounds)
                .map(|(a, b)| match (a, b) {
                    (None, x) => *x,
                    (x, None) => *x,
                    (Some(x), Some(y)) => Some(*x.min(y)),
                })
                .collect(),
        }
    }

    /// The largest population size of any configuration in the ideal:
    /// `Σ_q u(q)`, or `None` if some bound is ω (sizes are unbounded).
    pub fn max_population(&self) -> Option<u64> {
        self.bounds
            .iter()
            .try_fold(0u64, |acc, b| b.map(|limit| acc.saturating_add(limit)))
    }

    /// Returns `true` if some bound is ω, i.e. the ideal is infinite.
    pub fn is_unbounded(&self) -> bool {
        self.bounds.iter().any(Option::is_none)
    }
}

impl fmt::Display for Ideal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "↓⟨")?;
        for (i, b) in self.bounds.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match b {
                Some(k) => write!(f, "{k}")?,
                None => write!(f, "ω")?,
            }
        }
        write!(f, "⟩")
    }
}

/// A downward-closed set represented as a finite union of ideals.
///
/// The representation is kept *canonical*: the ideals form an antichain (no
/// ideal is included in another) and are stored in a fixed sorted order, so
/// two equal sets built along different routes have identical
/// representations.  [`DownwardClosedSet::insert`] maintains the antichain
/// incrementally; [`DownwardClosedSet::canonicalize`] restores the full
/// invariant (used internally by `union`/`intersect`, and available for
/// representations obtained from external sources such as deserialisation).
///
/// Equality is *semantic* (mutual inclusion), so it is independent of the
/// insertion order even for non-canonical representations.
#[derive(Debug, Clone, Eq, Serialize, Deserialize, Default)]
pub struct DownwardClosedSet {
    ideals: Vec<Ideal>,
}

impl PartialEq for DownwardClosedSet {
    fn eq(&self, other: &Self) -> bool {
        if self.ideals.is_empty() || other.ideals.is_empty() {
            return self.ideals.is_empty() == other.ideals.is_empty();
        }
        if self.ideals[0].num_states() != other.ideals[0].num_states() {
            return false;
        }
        self.included_in(other) && other.included_in(self)
    }
}

impl DownwardClosedSet {
    /// The empty set.
    pub fn empty() -> Self {
        DownwardClosedSet { ideals: Vec::new() }
    }

    /// A set consisting of a single ideal.
    pub fn from_ideal(ideal: Ideal) -> Self {
        DownwardClosedSet {
            ideals: vec![ideal],
        }
    }

    /// The ideals of the (minimised) representation.
    pub fn ideals(&self) -> &[Ideal] {
        &self.ideals
    }

    /// Number of ideals in the representation.
    pub fn len(&self) -> usize {
        self.ideals.len()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ideals.is_empty()
    }

    /// Adds an ideal, keeping the representation minimal (no ideal included
    /// in another).
    pub fn insert(&mut self, ideal: Ideal) {
        if self
            .ideals
            .iter()
            .any(|existing| ideal.included_in(existing))
        {
            return;
        }
        self.ideals.retain(|existing| !existing.included_in(&ideal));
        self.ideals.push(ideal);
    }

    /// Adds the downward closure of a configuration.
    pub fn insert_config(&mut self, c: &Config) {
        self.insert(Ideal::below(c));
    }

    /// Membership test.
    pub fn contains(&self, c: &Config) -> bool {
        self.ideals.iter().any(|i| i.contains(c))
    }

    /// Restores the canonical representation: removes subsumed ideals
    /// (antichain reduction), deduplicates, and sorts the survivors into a
    /// fixed order (`ω` bounds sort above every finite bound).
    ///
    /// `insert` keeps the antichain invariant incrementally, but
    /// representations obtained from external sources (deserialisation,
    /// manual assembly) may contain duplicate or subsumed ideals that would
    /// otherwise keep growing through repeated `union`/`intersect` chains.
    pub fn canonicalize(&mut self) {
        let ideals = std::mem::take(&mut self.ideals);
        for ideal in ideals {
            self.insert(ideal);
        }
        self.sort_ideals();
    }

    /// Sorts the ideals into the canonical order (`None` = ω sorts above
    /// every finite bound, so larger ideals come later).  Sufficient on its
    /// own for representations built through `insert`, which already
    /// maintains the antichain invariant — `canonicalize` adds the
    /// re-insertion pass only for externally assembled representations.
    fn sort_ideals(&mut self) {
        let key = |b: &Option<u64>| b.map_or((1u8, 0u64), |k| (0, k));
        self.ideals
            .sort_by(|a, b| a.bounds().iter().map(key).cmp(b.bounds().iter().map(key)));
    }

    /// Union of two sets, in canonical form.
    pub fn union(&self, other: &DownwardClosedSet) -> DownwardClosedSet {
        let mut out = self.clone();
        for i in &other.ideals {
            out.insert(i.clone());
        }
        out.sort_ideals();
        out
    }

    /// Intersection of two sets, in canonical form: downward-closed sets are
    /// closed under intersection, with `(⋃ᵢ Iᵢ) ∩ (⋃ⱼ Jⱼ) = ⋃ᵢⱼ (Iᵢ ∩ Jⱼ)`.
    pub fn intersect(&self, other: &DownwardClosedSet) -> DownwardClosedSet {
        let mut out = DownwardClosedSet::empty();
        for i in &self.ideals {
            for j in &other.ideals {
                out.insert(i.intersect(j));
            }
        }
        out.sort_ideals();
        out
    }

    /// Inclusion test `self ⊆ other`.
    ///
    /// Sound for canonical *and* non-canonical representations: an ideal is
    /// included in a union of ideals iff it is included in one of them.
    pub fn included_in(&self, other: &DownwardClosedSet) -> bool {
        self.ideals
            .iter()
            .all(|i| other.ideals.iter().any(|j| i.included_in(j)))
    }

    /// The largest finite bound over all ideals (a norm for the representation).
    pub fn norm(&self) -> u64 {
        self.ideals.iter().map(Ideal::norm).max().unwrap_or(0)
    }

    /// The largest population size over all configurations of the set, or
    /// `None` if some ideal is unbounded.  The empty set reports `Some(0)`.
    pub fn max_population(&self) -> Option<u64> {
        self.ideals
            .iter()
            .try_fold(0u64, |acc, i| i.max_population().map(|m| acc.max(m)))
    }
}

impl fmt::Display for DownwardClosedSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ideals.is_empty() {
            return write!(f, "∅");
        }
        for (i, ideal) in self.ideals.iter().enumerate() {
            if i > 0 {
                write!(f, " ∪ ")?;
            }
            write!(f, "{ideal}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(counts: &[u64]) -> Config {
        Config::from_counts(counts.to_vec())
    }

    #[test]
    fn basis_element_membership() {
        let elem = BasisElement::new(cfg(&[1, 2, 0]), [StateId::new(1)]);
        assert!(elem.contains(&cfg(&[1, 2, 0])));
        assert!(elem.contains(&cfg(&[1, 9, 0])));
        assert!(!elem.contains(&cfg(&[1, 1, 0]))); // below base on an ω-state
        assert!(!elem.contains(&cfg(&[0, 2, 0]))); // differs outside S
        assert!(!elem.contains(&cfg(&[1, 2, 1]))); // differs outside S
        assert!(!elem.contains(&cfg(&[1, 2]))); // wrong dimension
    }

    #[test]
    fn basis_element_witness() {
        let elem = BasisElement::new(cfg(&[1, 2, 0]), [StateId::new(1)]);
        let w = elem.witness(&cfg(&[1, 7, 0])).unwrap();
        assert_eq!(w.counts(), &[0, 5, 0]);
        assert!(elem.witness(&cfg(&[0, 7, 0])).is_none());
    }

    #[test]
    fn basis_element_from_threshold() {
        let c = cfg(&[1, 100, 3]);
        let elem = BasisElement::from_config_with_threshold(&c, 10);
        assert_eq!(elem.base().counts(), &[1, 10, 3]);
        assert_eq!(elem.omega_vec(), vec![StateId::new(1)]);
        assert!(elem.contains(&c));
        assert_eq!(elem.norm(), 10);
    }

    #[test]
    fn ideal_membership_and_inclusion() {
        let i = Ideal::new(vec![Some(2), None]);
        assert!(i.contains(&cfg(&[2, 100])));
        assert!(!i.contains(&cfg(&[3, 0])));
        let j = Ideal::new(vec![Some(5), None]);
        assert!(i.included_in(&j));
        assert!(!j.included_in(&i));
        assert!(i.included_in(&Ideal::full(2)));
        assert!(!Ideal::full(2).included_in(&i));
        assert_eq!(i.norm(), 2);
    }

    #[test]
    fn ideal_below_configuration() {
        let i = Ideal::below(&cfg(&[1, 2]));
        assert!(i.contains(&cfg(&[1, 2])));
        assert!(i.contains(&cfg(&[0, 0])));
        assert!(!i.contains(&cfg(&[2, 2])));
    }

    #[test]
    fn set_insert_keeps_minimal_representation() {
        let mut s = DownwardClosedSet::empty();
        s.insert(Ideal::new(vec![Some(1), Some(1)]));
        s.insert(Ideal::new(vec![Some(2), Some(2)])); // absorbs the first
        assert_eq!(s.len(), 1);
        s.insert(Ideal::new(vec![Some(1), Some(1)])); // already included
        assert_eq!(s.len(), 1);
        s.insert(Ideal::new(vec![Some(0), None])); // incomparable
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn set_membership_union_inclusion() {
        let mut a = DownwardClosedSet::empty();
        a.insert_config(&cfg(&[2, 0]));
        let mut b = DownwardClosedSet::empty();
        b.insert_config(&cfg(&[0, 2]));
        assert!(a.contains(&cfg(&[1, 0])));
        assert!(!a.contains(&cfg(&[0, 1])));
        let u = a.union(&b);
        assert!(u.contains(&cfg(&[1, 0])));
        assert!(u.contains(&cfg(&[0, 1])));
        assert!(a.included_in(&u));
        assert!(b.included_in(&u));
        assert!(!u.included_in(&a));
        assert_eq!(u.norm(), 2);
    }

    #[test]
    fn ideal_intersection_and_population_bounds() {
        let i = Ideal::new(vec![Some(2), None, Some(5)]);
        let j = Ideal::new(vec![Some(3), Some(4), None]);
        let k = i.intersect(&j);
        assert_eq!(k.bounds(), &[Some(2), Some(4), Some(5)]);
        // The intersection contains exactly the common configurations.
        for a in 0..=4u64 {
            for b in 0..=5 {
                for c in 0..=6 {
                    let cfg = cfg(&[a, b, c]);
                    assert_eq!(k.contains(&cfg), i.contains(&cfg) && j.contains(&cfg));
                }
            }
        }
        assert_eq!(k.max_population(), Some(11));
        assert!(!k.is_unbounded());
        assert_eq!(i.max_population(), None);
        assert!(i.is_unbounded());
    }

    #[test]
    fn set_intersection_is_canonical_and_semantically_correct() {
        let mut a = DownwardClosedSet::empty();
        a.insert(Ideal::new(vec![Some(2), None]));
        a.insert(Ideal::new(vec![None, Some(1)]));
        let mut b = DownwardClosedSet::empty();
        b.insert(Ideal::new(vec![Some(1), None]));
        let isect = a.intersect(&b);
        // ⟨2,ω⟩∩⟨1,ω⟩ = ⟨1,ω⟩ absorbs ⟨ω,1⟩∩⟨1,ω⟩ = ⟨1,1⟩.
        assert_eq!(isect.len(), 1);
        for x in 0..=3u64 {
            for y in 0..=3 {
                let cfg = cfg(&[x, y]);
                assert_eq!(isect.contains(&cfg), a.contains(&cfg) && b.contains(&cfg));
            }
        }
        assert!(isect.included_in(&a));
        assert!(isect.included_in(&b));
    }

    #[test]
    fn canonicalize_removes_duplicates_and_orders_deterministically() {
        let mut forward = DownwardClosedSet::empty();
        forward.insert(Ideal::new(vec![Some(1), None]));
        forward.insert(Ideal::new(vec![None, Some(1)]));
        let mut backward = DownwardClosedSet::empty();
        backward.insert(Ideal::new(vec![None, Some(1)]));
        backward.insert(Ideal::new(vec![Some(0), Some(0)])); // subsumed
        backward.insert(Ideal::new(vec![Some(1), None]));
        // Semantic equality holds regardless of insertion order…
        assert_eq!(forward, backward);
        // …and canonicalisation makes the representations identical.
        forward.canonicalize();
        backward.canonicalize();
        assert_eq!(forward.ideals(), backward.ideals());
        assert_eq!(forward.len(), 2);
        // Unions are canonical: both orders yield the same representation.
        let u1 = forward.union(&backward);
        let u2 = backward.union(&forward);
        assert_eq!(u1.ideals(), u2.ideals());
    }

    #[test]
    fn set_population_bound() {
        let mut s = DownwardClosedSet::empty();
        assert_eq!(s.max_population(), Some(0));
        s.insert(Ideal::new(vec![Some(2), Some(3)]));
        assert_eq!(s.max_population(), Some(5));
        s.insert(Ideal::new(vec![None, Some(0)]));
        assert_eq!(s.max_population(), None);
    }

    #[test]
    fn empty_set_behaviour() {
        let s = DownwardClosedSet::empty();
        assert!(s.is_empty());
        assert!(!s.contains(&cfg(&[0, 0])));
        assert_eq!(s.to_string(), "∅");
        assert_eq!(s.norm(), 0);
    }

    #[test]
    fn display_forms() {
        let elem = BasisElement::new(cfg(&[1, 0]), [StateId::new(1)]);
        assert_eq!(elem.to_string(), "(⟨1·q0⟩, {q1})");
        let i = Ideal::new(vec![Some(3), None]);
        assert_eq!(i.to_string(), "↓⟨3, ω⟩");
    }
}
