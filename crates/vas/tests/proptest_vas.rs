//! Property-based tests of the VAS substrate: Hilbert bases, Dickson's lemma
//! and downward-closed sets.
//!
//! The original version of this file used the `proptest` crate; the build
//! environment is offline, so the same properties are now exercised over
//! seeded pseudo-random inputs (reproducible by construction).

use popproto_model::Config;
use popproto_vas::hilbert::{is_solution_equalities, is_solution_inequalities};
use popproto_vas::{
    find_increasing_pair, hilbert_basis_equalities, hilbert_basis_inequalities, DownwardClosedSet,
    HilbertOptions, Ideal,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn small_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Vec<Vec<i64>> {
    (0..rows)
        .map(|_| (0..cols).map(|_| rng.gen_range(-3i64..=3)).collect())
        .collect()
}

fn random_counts(rng: &mut StdRng, dim: usize, max: u64) -> Vec<u64> {
    (0..dim).map(|_| rng.gen_range(0..=max)).collect()
}

/// Every vector returned by the equality Hilbert basis solves the system
/// and is pairwise incomparable with the other solutions.
#[test]
fn hilbert_equality_solutions_are_sound_and_minimal() {
    let mut rng = StdRng::seed_from_u64(0xB1);
    for _ in 0..32 {
        let matrix = small_matrix(&mut rng, 2, 3);
        let options = HilbertOptions {
            node_budget: 200_000,
            norm_limit: Some(30),
        };
        let basis = hilbert_basis_equalities(&matrix, &options);
        for s in &basis.solutions {
            assert!(is_solution_equalities(&matrix, s));
            assert!(s.iter().any(|&v| v > 0));
        }
        for a in &basis.solutions {
            for b in &basis.solutions {
                if a != b {
                    assert!(!a.iter().zip(b).all(|(x, y)| x <= y));
                }
            }
        }
    }
}

/// Every generator returned for an inequality system solves it.
#[test]
fn hilbert_inequality_generators_are_sound() {
    let mut rng = StdRng::seed_from_u64(0xB2);
    for _ in 0..32 {
        let matrix = small_matrix(&mut rng, 2, 3);
        let options = HilbertOptions {
            node_budget: 200_000,
            norm_limit: Some(30),
        };
        let basis = hilbert_basis_inequalities(&matrix, &options);
        for s in &basis.solutions {
            assert!(is_solution_inequalities(&matrix, s));
        }
    }
}

/// Dickson's lemma: every sequence of 2-dimensional vectors with entries
/// bounded by 3 and length > 16 contains an increasing pair.
#[test]
fn bounded_sequences_are_good() {
    let mut rng = StdRng::seed_from_u64(0xB3);
    for _ in 0..64 {
        let len = rng.gen_range(17..24usize);
        let configs: Vec<Config> = (0..len)
            .map(|_| Config::from_counts(random_counts(&mut rng, 2, 3)))
            .collect();
        assert!(find_increasing_pair(&configs).is_some());
    }
}

/// An increasing pair reported by the search is indeed increasing.
#[test]
fn increasing_pairs_are_correct() {
    let mut rng = StdRng::seed_from_u64(0xB4);
    for _ in 0..64 {
        let len = rng.gen_range(1..12usize);
        let configs: Vec<Config> = (0..len)
            .map(|_| Config::from_counts(random_counts(&mut rng, 3, 5)))
            .collect();
        if let Some((i, j)) = find_increasing_pair(&configs) {
            assert!(i < j);
            assert!(configs[i].le(&configs[j]));
        }
    }
}

/// Downward-closed sets: membership is preserved downwards and the union
/// contains both operands.
#[test]
fn downward_closed_sets_behave() {
    let mut rng = StdRng::seed_from_u64(0xB5);
    for _ in 0..64 {
        let c = Config::from_counts(random_counts(&mut rng, 3, 6));
        let s = Config::from_counts(random_counts(&mut rng, 3, 6));
        let mut set = DownwardClosedSet::empty();
        set.insert_config(&c);
        assert!(set.contains(&c));
        if s.le(&c) {
            assert!(set.contains(&s));
        }
        let mut other = DownwardClosedSet::empty();
        other.insert(Ideal::below(&s));
        let union = set.union(&other);
        assert!(union.contains(&c));
        assert!(union.contains(&s));
        assert!(set.included_in(&union));
    }
}

/// Builds a random ideal with bounds in `0..=max` and ~1/3 ω entries.
fn random_ideal(rng: &mut StdRng, dim: usize, max: u64) -> Ideal {
    Ideal::new(
        (0..dim)
            .map(|_| {
                if rng.gen_range(0..3u32) == 0 {
                    None
                } else {
                    Some(rng.gen_range(0..=max))
                }
            })
            .collect(),
    )
}

/// Builds a random downward-closed set with up to 4 ideals.
fn random_dcset(rng: &mut StdRng, dim: usize, max: u64) -> DownwardClosedSet {
    let mut set = DownwardClosedSet::empty();
    for _ in 0..rng.gen_range(0..=4usize) {
        set.insert(random_ideal(rng, dim, max));
    }
    set
}

/// Enumerates every configuration of dimension 3 with entries `0..=max`.
fn all_configs(max: u64) -> Vec<Config> {
    let mut out = Vec::new();
    for a in 0..=max {
        for b in 0..=max {
            for c in 0..=max {
                out.push(Config::from_counts(vec![a, b, c]));
            }
        }
    }
    out
}

/// Ideal intersection agrees with brute-force membership on small slices.
#[test]
fn ideal_intersection_matches_brute_force() {
    let mut rng = StdRng::seed_from_u64(0xD1);
    let probes = all_configs(5);
    for _ in 0..64 {
        let i = random_ideal(&mut rng, 3, 4);
        let j = random_ideal(&mut rng, 3, 4);
        let k = i.intersect(&j);
        for c in &probes {
            assert_eq!(
                k.contains(c),
                i.contains(c) && j.contains(c),
                "{i} ∩ {j} disagrees at {c}"
            );
        }
    }
}

/// Ideal inclusion is equivalent to membership containment on a slice large
/// enough to separate the bounds.
#[test]
fn ideal_inclusion_matches_brute_force() {
    let mut rng = StdRng::seed_from_u64(0xD2);
    let probes = all_configs(5);
    for _ in 0..64 {
        let i = random_ideal(&mut rng, 3, 4);
        let j = random_ideal(&mut rng, 3, 4);
        let by_membership = probes.iter().all(|c| !i.contains(c) || j.contains(c));
        assert_eq!(
            i.included_in(&j),
            by_membership,
            "{i} ⊆ {j} disagrees with brute force"
        );
    }
}

/// Set membership, union, intersection and inclusion all agree with
/// configuration-by-configuration brute force.
#[test]
fn dcset_operations_match_brute_force() {
    let mut rng = StdRng::seed_from_u64(0xD3);
    let probes = all_configs(5);
    for _ in 0..48 {
        let a = random_dcset(&mut rng, 3, 4);
        let b = random_dcset(&mut rng, 3, 4);
        let union = a.union(&b);
        let isect = a.intersect(&b);
        for c in &probes {
            assert_eq!(union.contains(c), a.contains(c) || b.contains(c));
            assert_eq!(isect.contains(c), a.contains(c) && b.contains(c));
        }
        let included = probes.iter().all(|c| !a.contains(c) || b.contains(c));
        assert_eq!(a.included_in(&b), included);
        // Canonicalisation never changes the semantics.
        let mut canonical = a.clone();
        canonical.canonicalize();
        assert_eq!(canonical, a);
        for c in &probes {
            assert_eq!(canonical.contains(c), a.contains(c));
        }
        // Antichain property: no ideal of the canonical form subsumes another.
        for (x, i) in canonical.ideals().iter().enumerate() {
            for (y, j) in canonical.ideals().iter().enumerate() {
                if x != y {
                    assert!(!i.included_in(j), "canonical form kept a subsumed ideal");
                }
            }
        }
    }
}

/// Semantic equality is insertion-order independent, and `max_population`
/// matches the brute-force maximum on bounded sets.
#[test]
fn dcset_equality_and_population_bounds() {
    let mut rng = StdRng::seed_from_u64(0xD4);
    for _ in 0..48 {
        let ideals: Vec<Ideal> = (0..rng.gen_range(1..=4usize))
            .map(|_| {
                // Bounded ideals only, so max_population is finite.
                Ideal::new((0..3).map(|_| Some(rng.gen_range(0..=4u64))).collect())
            })
            .collect();
        let mut forward = DownwardClosedSet::empty();
        for i in &ideals {
            forward.insert(i.clone());
        }
        let mut backward = DownwardClosedSet::empty();
        for i in ideals.iter().rev() {
            backward.insert(i.clone());
        }
        assert_eq!(forward, backward);
        let brute_max = all_configs(4)
            .iter()
            .filter(|c| forward.contains(c))
            .map(Config::size)
            .max()
            .unwrap_or(0);
        assert_eq!(forward.max_population(), Some(brute_max));
    }
}
