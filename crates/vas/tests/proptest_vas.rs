//! Property-based tests of the VAS substrate: Hilbert bases, Dickson's lemma
//! and downward-closed sets.

use popproto_model::Config;
use popproto_vas::hilbert::{is_solution_equalities, is_solution_inequalities};
use popproto_vas::{
    find_increasing_pair, hilbert_basis_equalities, hilbert_basis_inequalities, DownwardClosedSet,
    HilbertOptions, Ideal,
};
use proptest::prelude::*;

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Vec<Vec<i64>>> {
    prop::collection::vec(prop::collection::vec(-3i64..=3, cols), rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every vector returned by the equality Hilbert basis solves the system
    /// and is pairwise incomparable with the other solutions.
    #[test]
    fn hilbert_equality_solutions_are_sound_and_minimal(matrix in small_matrix(2, 3)) {
        let mut options = HilbertOptions::default();
        options.node_budget = 200_000;
        options.norm_limit = Some(30);
        let basis = hilbert_basis_equalities(&matrix, &options);
        for s in &basis.solutions {
            prop_assert!(is_solution_equalities(&matrix, s));
            prop_assert!(s.iter().any(|&v| v > 0));
        }
        for a in &basis.solutions {
            for b in &basis.solutions {
                if a != b {
                    prop_assert!(!a.iter().zip(b).all(|(x, y)| x <= y));
                }
            }
        }
    }

    /// Every generator returned for an inequality system solves it.
    #[test]
    fn hilbert_inequality_generators_are_sound(matrix in small_matrix(2, 3)) {
        let mut options = HilbertOptions::default();
        options.node_budget = 200_000;
        options.norm_limit = Some(30);
        let basis = hilbert_basis_inequalities(&matrix, &options);
        for s in &basis.solutions {
            prop_assert!(is_solution_inequalities(&matrix, s));
        }
    }

    /// Dickson's lemma: every sequence of 2-dimensional vectors with entries
    /// bounded by 3 and length > 16 contains an increasing pair.
    #[test]
    fn bounded_sequences_are_good(seq in prop::collection::vec(prop::collection::vec(0u64..=3, 2), 17..24)) {
        let configs: Vec<Config> = seq.into_iter().map(Config::from_counts).collect();
        prop_assert!(find_increasing_pair(&configs).is_some());
    }

    /// An increasing pair reported by the search is indeed increasing.
    #[test]
    fn increasing_pairs_are_correct(seq in prop::collection::vec(prop::collection::vec(0u64..=5, 3), 1..12)) {
        let configs: Vec<Config> = seq.into_iter().map(Config::from_counts).collect();
        if let Some((i, j)) = find_increasing_pair(&configs) {
            prop_assert!(i < j);
            prop_assert!(configs[i].le(&configs[j]));
        }
    }

    /// Downward-closed sets: membership is preserved downwards and the union
    /// contains both operands.
    #[test]
    fn downward_closed_sets_behave(counts in prop::collection::vec(0u64..=6, 3), smaller in prop::collection::vec(0u64..=6, 3)) {
        let c = Config::from_counts(counts);
        let s = Config::from_counts(smaller);
        let mut set = DownwardClosedSet::empty();
        set.insert_config(&c);
        prop_assert!(set.contains(&c));
        if s.le(&c) {
            prop_assert!(set.contains(&s));
        }
        let mut other = DownwardClosedSet::empty();
        other.insert(Ideal::below(&s));
        let union = set.union(&other);
        prop_assert!(union.contains(&c));
        prop_assert!(union.contains(&s));
        prop_assert!(set.included_in(&union));
    }
}
