//! Property-based tests of the VAS substrate: Hilbert bases, Dickson's lemma
//! and downward-closed sets.
//!
//! The original version of this file used the `proptest` crate; the build
//! environment is offline, so the same properties are now exercised over
//! seeded pseudo-random inputs (reproducible by construction).

use popproto_model::Config;
use popproto_vas::hilbert::{is_solution_equalities, is_solution_inequalities};
use popproto_vas::{
    find_increasing_pair, hilbert_basis_equalities, hilbert_basis_inequalities, DownwardClosedSet,
    HilbertOptions, Ideal,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn small_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Vec<Vec<i64>> {
    (0..rows)
        .map(|_| (0..cols).map(|_| rng.gen_range(-3i64..=3)).collect())
        .collect()
}

fn random_counts(rng: &mut StdRng, dim: usize, max: u64) -> Vec<u64> {
    (0..dim).map(|_| rng.gen_range(0..=max)).collect()
}

/// Every vector returned by the equality Hilbert basis solves the system
/// and is pairwise incomparable with the other solutions.
#[test]
fn hilbert_equality_solutions_are_sound_and_minimal() {
    let mut rng = StdRng::seed_from_u64(0xB1);
    for _ in 0..32 {
        let matrix = small_matrix(&mut rng, 2, 3);
        let options = HilbertOptions {
            node_budget: 200_000,
            norm_limit: Some(30),
        };
        let basis = hilbert_basis_equalities(&matrix, &options);
        for s in &basis.solutions {
            assert!(is_solution_equalities(&matrix, s));
            assert!(s.iter().any(|&v| v > 0));
        }
        for a in &basis.solutions {
            for b in &basis.solutions {
                if a != b {
                    assert!(!a.iter().zip(b).all(|(x, y)| x <= y));
                }
            }
        }
    }
}

/// Every generator returned for an inequality system solves it.
#[test]
fn hilbert_inequality_generators_are_sound() {
    let mut rng = StdRng::seed_from_u64(0xB2);
    for _ in 0..32 {
        let matrix = small_matrix(&mut rng, 2, 3);
        let options = HilbertOptions {
            node_budget: 200_000,
            norm_limit: Some(30),
        };
        let basis = hilbert_basis_inequalities(&matrix, &options);
        for s in &basis.solutions {
            assert!(is_solution_inequalities(&matrix, s));
        }
    }
}

/// Dickson's lemma: every sequence of 2-dimensional vectors with entries
/// bounded by 3 and length > 16 contains an increasing pair.
#[test]
fn bounded_sequences_are_good() {
    let mut rng = StdRng::seed_from_u64(0xB3);
    for _ in 0..64 {
        let len = rng.gen_range(17..24usize);
        let configs: Vec<Config> = (0..len)
            .map(|_| Config::from_counts(random_counts(&mut rng, 2, 3)))
            .collect();
        assert!(find_increasing_pair(&configs).is_some());
    }
}

/// An increasing pair reported by the search is indeed increasing.
#[test]
fn increasing_pairs_are_correct() {
    let mut rng = StdRng::seed_from_u64(0xB4);
    for _ in 0..64 {
        let len = rng.gen_range(1..12usize);
        let configs: Vec<Config> = (0..len)
            .map(|_| Config::from_counts(random_counts(&mut rng, 3, 5)))
            .collect();
        if let Some((i, j)) = find_increasing_pair(&configs) {
            assert!(i < j);
            assert!(configs[i].le(&configs[j]));
        }
    }
}

/// Downward-closed sets: membership is preserved downwards and the union
/// contains both operands.
#[test]
fn downward_closed_sets_behave() {
    let mut rng = StdRng::seed_from_u64(0xB5);
    for _ in 0..64 {
        let c = Config::from_counts(random_counts(&mut rng, 3, 6));
        let s = Config::from_counts(random_counts(&mut rng, 3, 6));
        let mut set = DownwardClosedSet::empty();
        set.insert_config(&c);
        assert!(set.contains(&c));
        if s.le(&c) {
            assert!(set.contains(&s));
        }
        let mut other = DownwardClosedSet::empty();
        other.insert(Ideal::below(&s));
        let union = set.union(&other);
        assert!(union.contains(&c));
        assert!(union.contains(&s));
        assert!(set.included_in(&union));
    }
}
