//! A leader-assisted binary counter computing `x ≥ 2^k`.
//!
//! The protocol has `k` *bit leaders* — auxiliary agents that together form a
//! `k`-bit binary counter — plus input tokens that increment the counter.
//! When the counter overflows (i.e. `2^k` tokens have been absorbed), an
//! accepting state `F` is produced and floods the population.
//!
//! This family exercises the protocols-with-leaders code paths of
//! Sections 2–4 (initial configurations `L + m·x`, the definition of `BBL`).
//! It has `Θ(k) = Θ(log η)` states, like the leaderless `P'_k`; the
//! doubly-succinct `O(log log η)` construction of Blondin et al. [11, 12]
//! (which simulates bounded counter machines) is *not* reproduced here — see
//! DESIGN.md for the substitution note.

use popproto_model::{Output, Protocol, ProtocolBuilder};

/// Builds the leader-assisted counter protocol computing `x ≥ 2^k` with `k`
/// bit leaders and `3k + 2` states.
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Examples
///
/// ```
/// use popproto_zoo::leader_counter;
/// let p = leader_counter(3); // x ≥ 8
/// assert!(!p.is_leaderless());
/// assert_eq!(p.leaders().size(), 3);
/// ```
pub fn leader_counter(k: u32) -> Protocol {
    assert!(k >= 1, "leader counter requires at least one bit");
    let mut b = ProtocolBuilder::new(format!("leader_counter({k}) [x >= 2^{k}]"));
    // Input tokens and the spent-token state.
    let token = b.add_state("token", Output::False);
    let spent = b.add_state("spent", Output::False);
    // The flooding accept state.
    let accept = b.add_state("F", Output::True);
    // Bit leaders: bit_i is either 0 or 1.
    let bit0: Vec<_> = (0..k)
        .map(|i| b.add_state(format!("bit{i}=0"), Output::False))
        .collect();
    let bit1: Vec<_> = (0..k)
        .map(|i| b.add_state(format!("bit{i}=1"), Output::False))
        .collect();
    // Carries in flight towards bit i (a carry into bit 0 is the token itself).
    let carry: Vec<_> = (1..k)
        .map(|i| b.add_state(format!("carry{i}"), Output::False))
        .collect();
    let carry_into = |i: usize| if i == 0 { token } else { carry[i - 1] };

    for i in 0..k as usize {
        let incoming = carry_into(i);
        // Incoming carry meets bit i = 0: set the bit, absorb the carry.
        b.add_transition((incoming, bit0[i]), (spent, bit1[i]))
            .expect("states were just declared");
        // Incoming carry meets bit i = 1: clear the bit, propagate the carry.
        let outgoing = if i + 1 < k as usize {
            carry_into(i + 1)
        } else {
            accept
        };
        b.add_transition((incoming, bit1[i]), (outgoing, bit0[i]))
            .expect("states were just declared");
    }
    // The accept state floods the population.
    let everyone: Vec<_> = std::iter::once(token)
        .chain(std::iter::once(spent))
        .chain(bit0.iter().copied())
        .chain(bit1.iter().copied())
        .chain(carry.iter().copied())
        .collect();
    for q in everyone {
        b.add_transition_idempotent((q, accept), (accept, accept))
            .expect("states were just declared");
    }
    // One leader per bit, initially 0.
    for &q in &bit0 {
        b.add_leader(q, 1);
    }
    b.set_input_state("x", token);
    b.build()
        .expect("leader counter construction is well-formed")
}

/// The threshold computed by [`leader_counter`]`(k)`, i.e. `2^k`.
pub fn leader_counter_threshold(k: u32) -> u64 {
    1u64 << k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        for k in 1..=5u32 {
            let p = leader_counter(k);
            assert_eq!(p.num_states() as u32, 3 * k + 2);
            assert_eq!(p.leaders().size() as u32, k);
            assert!(!p.is_leaderless());
            assert!(p.is_unary());
        }
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bits_panics() {
        let _ = leader_counter(0);
    }

    #[test]
    fn initial_configuration_contains_leaders_and_tokens() {
        let p = leader_counter(2);
        let ic = p.initial_config_unary(3);
        assert_eq!(ic.size(), 5); // 2 leaders + 3 tokens
        assert_eq!(ic.get(p.state_by_name("token").unwrap()), 3);
        assert_eq!(ic.get(p.state_by_name("bit0=0").unwrap()), 1);
        assert_eq!(ic.get(p.state_by_name("bit1=0").unwrap()), 1);
    }

    #[test]
    fn counting_two_tokens_with_one_bit_accepts() {
        // k = 1: threshold 2.  One token sets the bit, the second overflows to F.
        let p = leader_counter(1);
        let ic = p.initial_config_unary(2);
        // token + bit0=0 → spent + bit0=1
        let step1 = p.successors(&ic);
        assert_eq!(step1.len(), 1);
        // token + bit0=1 → F + bit0=0
        let step2 = p.successors(&step1[0]);
        assert_eq!(step2.len(), 1);
        let accept = p.state_by_name("F").unwrap();
        assert_eq!(step2[0].get(accept), 1);
    }

    #[test]
    fn one_token_with_one_bit_never_accepts() {
        let p = leader_counter(1);
        let ic = p.initial_config_unary(1);
        let accept = p.state_by_name("F").unwrap();
        // Exhaust the (tiny) reachable space by hand: the only step sets the bit.
        let step1 = p.successors(&ic);
        assert_eq!(step1.len(), 1);
        assert_eq!(step1[0].get(accept), 0);
        assert!(p.successors(&step1[0]).is_empty());
    }

    #[test]
    fn carry_chain_state_names_exist() {
        let p = leader_counter(3);
        assert!(p.state_by_name("carry1").is_some());
        assert!(p.state_by_name("carry2").is_some());
        assert!(p.state_by_name("carry3").is_none());
    }

    #[test]
    fn threshold_helper() {
        assert_eq!(leader_counter_threshold(1), 2);
        assert_eq!(leader_counter_threshold(4), 16);
    }
}
