//! A library of concrete population protocol families.
//!
//! These are the protocols the experiments run on:
//!
//! * [`flock()`] — the protocol `P_η` of Example 2.1 (generalised from `2^k` to
//!   arbitrary `η`): `η + 1` states computing `x ≥ η` by summing with a cap;
//! * [`binary_counter()`] — the succinct protocol `P'_k` of Example 2.1:
//!   `k + 2` states computing `x ≥ 2^k` by doubling, the witness family for
//!   the `BB(n) ∈ Ω(2^n)` lower bound of Theorem 2.2;
//! * [`majority()`] — the classical 4-state majority protocol (`x₀ > x₁`);
//! * [`approximate_majority()`] — the 3-state approximate majority protocol,
//!   the standard large-population simulation workload (O(log n) parallel
//!   convergence time);
//! * [`modulo()`] — remainder predicates `x ≡ r (mod m)`;
//! * [`leader_counter()`] — a leader-assisted binary counter computing
//!   `x ≥ 2^k` with `k` bit-leaders, exercising the protocols-with-leaders
//!   code paths of Sections 2–4;
//! * [`catalog()`] — a uniform handle on all families for the experiment
//!   drivers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approximate_majority;
pub mod binary_counter;
pub mod catalog;
pub mod flock;
pub mod leader_counter;
pub mod majority;
pub mod modulo;

pub use approximate_majority::approximate_majority;
pub use binary_counter::binary_counter;
pub use catalog::{catalog, FamilyInstance};
pub use flock::flock;
pub use leader_counter::leader_counter;
pub use majority::majority;
pub use modulo::modulo;
