//! The flock protocol `P_η` of Example 2.1, generalised to arbitrary
//! thresholds.
//!
//! Each agent stores a number, initially 1.  When two agents meet, one stores
//! the (capped) sum and the other stores 0; once an agent reaches `η` all
//! agents are eventually converted to `η`.  The protocol has `η + 1` states
//! and computes `x ≥ η`.

use popproto_model::{Output, Protocol, ProtocolBuilder};

/// Builds the flock protocol `P_η` for the threshold `x ≥ η`.
///
/// # Panics
///
/// Panics if `eta == 0` (the predicate `x ≥ 0` is trivially true and the
/// construction needs at least the states `0` and `η`).
///
/// # Examples
///
/// ```
/// use popproto_zoo::flock;
/// let p = flock(8);
/// assert_eq!(p.num_states(), 9);
/// assert!(p.is_leaderless());
/// ```
pub fn flock(eta: u64) -> Protocol {
    assert!(
        eta >= 1,
        "flock protocol requires a threshold of at least 1"
    );
    let mut b = ProtocolBuilder::new(format!("flock({eta})"));
    let states: Vec<_> = (0..=eta)
        .map(|v| {
            b.add_state(
                v.to_string(),
                if v == eta {
                    Output::True
                } else {
                    Output::False
                },
            )
        })
        .collect();
    // a, b ↦ 0, a+b  when a+b < η;   a, b ↦ η, η  when a+b ≥ η.
    for a in 0..=eta {
        for v in a..=eta {
            let sum = a + v;
            let (post_lo, post_hi) = if sum >= eta { (eta, eta) } else { (0, sum) };
            // Skip silent transitions such as 0,0 ↦ 0,0.
            if (a == post_lo && v == post_hi) || (a == post_hi && v == post_lo) {
                continue;
            }
            b.add_transition_idempotent(
                (states[a as usize], states[v as usize]),
                (states[post_lo as usize], states[post_hi as usize]),
            )
            .expect("states were just declared");
        }
    }
    b.set_input_state("x", states[1]);
    b.build().expect("flock construction is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use popproto_model::{Config, StateId};

    #[test]
    fn state_count_matches_example_21() {
        // P_k in the paper has 2^k + 1 states for threshold 2^k.
        for k in 1..=4u32 {
            let eta = 2u64.pow(k);
            assert_eq!(flock(eta).num_states() as u64, eta + 1);
        }
        assert_eq!(flock(5).num_states(), 6);
    }

    #[test]
    fn outputs_and_input_state() {
        let p = flock(4);
        assert_eq!(p.output_of(p.state_by_name("4").unwrap()), Output::True);
        for v in 0..4u64 {
            assert_eq!(
                p.output_of(p.state_by_name(&v.to_string()).unwrap()),
                Output::False
            );
        }
        assert_eq!(p.input_state(0), p.state_by_name("1").unwrap());
    }

    #[test]
    fn summation_transition_semantics() {
        let p = flock(4);
        // ⟨2 agents with value 1⟩ can produce one agent with value 2.
        let c = p.initial_config_unary(2);
        let succ = p.successors(&c);
        assert_eq!(succ.len(), 1);
        let two = p.state_by_name("2").unwrap();
        let zero = p.state_by_name("0").unwrap();
        assert_eq!(succ[0].get(two), 1);
        assert_eq!(succ[0].get(zero), 1);
    }

    #[test]
    fn capping_at_threshold() {
        let p = flock(3);
        // Values 2 and 2 sum to 4 ≥ 3, so both agents jump to 3.
        let two = p.state_by_name("2").unwrap();
        let three = p.state_by_name("3").unwrap();
        let c = Config::singleton(p.num_states(), two, 2);
        let succ = p.successors(&c);
        assert_eq!(succ.len(), 1);
        assert_eq!(succ[0].get(three), 2);
    }

    #[test]
    fn accepting_state_is_absorbing() {
        let p = flock(4);
        let four = p.state_by_name("4").unwrap();
        let one = p.state_by_name("1").unwrap();
        let mut c = Config::empty(p.num_states());
        c.add(four, 1);
        c.add(one, 1);
        let succ = p.successors(&c);
        assert_eq!(succ.len(), 1);
        assert_eq!(succ[0].get(four), 2);
    }

    #[test]
    fn no_silent_transitions_are_materialised() {
        let p = flock(6);
        assert!(p.transitions().iter().all(|t| !t.is_silent()));
    }

    #[test]
    fn zero_agents_do_not_invent_value() {
        let p = flock(4);
        let zero = p.state_by_name("0").unwrap();
        let c = Config::singleton(p.num_states(), zero, 3);
        assert!(p.successors(&c).is_empty());
        assert_eq!(c.get(StateId::new(0)), 3);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threshold_panics() {
        let _ = flock(0);
    }
}
