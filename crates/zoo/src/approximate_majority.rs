//! The 3-state approximate majority protocol (Angluin, Aspnes, Eisenstat,
//! DISC 2007).
//!
//! Unlike the exact 4-state [`majority`](crate::majority()) protocol, this one
//! converges in O(log n) parallel time with high probability — which is what
//! makes it the standard stress-test workload for large-population
//! simulation: at n = 10⁸ agents it stabilises after a few billion
//! interactions, far beyond the sequential engine but seconds of work for
//! the batched one.

use popproto_model::{Output, Protocol, ProtocolBuilder};

/// Builds the 3-state approximate majority protocol over inputs `x0` (state
/// `A`) and `x1` (state `B`).
///
/// States: `A` (output 1), `B` (output 0) and the undecided `U` (output 1,
/// irrelevant at stabilisation).  Transitions:
///
/// * `A, B ↦ A, U` and `A, B ↦ B, U` — opposite opinions knock one agent
///   undecided (chosen uniformly, making the unordered pair `⦃A, B⦄`
///   nondeterministic — this family deliberately exercises the simulators'
///   multi-candidate code path);
/// * `A, U ↦ A, A` and `B, U ↦ B, B` — decided agents recruit undecided
///   ones.
///
/// The protocol stabilises to all-`A` or all-`B` (both silent); with an
/// initial imbalance of ω(√n log n) the initial majority wins with high
/// probability.  It *approximates* majority — ties and slim margins can go
/// either way — so it belongs to the simulation workloads, not to the
/// verified predicate families.
///
/// # Examples
///
/// ```
/// use popproto_zoo::approximate_majority;
/// let p = approximate_majority();
/// assert_eq!(p.num_states(), 3);
/// assert!(!p.is_deterministic());
/// ```
pub fn approximate_majority() -> Protocol {
    let mut b = ProtocolBuilder::new("approximate_majority");
    let a = b.add_state("A", Output::True);
    let bb = b.add_state("B", Output::False);
    let u = b.add_state("U", Output::True);
    b.add_transition((a, bb), (a, u)).unwrap();
    b.add_transition((a, bb), (bb, u)).unwrap();
    b.add_transition((a, u), (a, a)).unwrap();
    b.add_transition((bb, u), (bb, bb)).unwrap();
    b.set_input_state("x0", a);
    b.set_input_state("x1", bb);
    b.build()
        .expect("approximate majority construction is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use popproto_model::{Config, Input};

    #[test]
    fn shape() {
        let p = approximate_majority();
        assert_eq!(p.num_states(), 3);
        assert_eq!(p.num_transitions(), 4);
        assert!(p.is_leaderless());
        assert!(!p.is_unary());
        assert!(
            !p.is_deterministic(),
            "⦃A, B⦄ has two candidate transitions"
        );
    }

    #[test]
    fn unanimous_configurations_are_silent() {
        let p = approximate_majority();
        let all_a = Config::from_counts(vec![5, 0, 0]);
        let all_b = Config::from_counts(vec![0, 5, 0]);
        assert!(p.is_silent_config(&all_a));
        assert!(p.is_silent_config(&all_b));
        let mixed = Config::from_counts(vec![3, 2, 0]);
        assert!(!p.is_silent_config(&mixed));
        let undecided_rest = Config::from_counts(vec![1, 0, 4]);
        assert!(!p.is_silent_config(&undecided_rest));
    }

    #[test]
    fn initial_configuration_places_camps() {
        let p = approximate_majority();
        let ic = p.initial_config(&Input::from_counts(vec![7, 3]));
        assert_eq!(ic.counts(), &[7, 3, 0]);
    }
}
