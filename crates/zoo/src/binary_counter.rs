//! The succinct protocol `P'_k` of Example 2.1: `k + 2` states computing
//! `x ≥ 2^k` by repeated doubling.
//!
//! This family witnesses the `BB(n) ∈ Ω(2^n)` lower bound of Theorem 2.2:
//! with `n = k + 2` states it decides a threshold that is exponential in `n`.

use popproto_model::{Output, Protocol, ProtocolBuilder};

/// Builds the protocol `P'_k` computing `x ≥ 2^k` with `k + 2` states.
///
/// States are `{0, 2⁰, 2¹, …, 2ᵏ}`; two agents holding the same power `2^i`
/// (for `i < k`) merge into one agent holding `2^{i+1}` and one holding `0`;
/// an agent holding `2^k` converts everybody.
///
/// # Examples
///
/// ```
/// use popproto_zoo::binary_counter;
/// let p = binary_counter(5); // x ≥ 32
/// assert_eq!(p.num_states(), 7);
/// assert!(p.is_leaderless());
/// ```
pub fn binary_counter(k: u32) -> Protocol {
    let mut b = ProtocolBuilder::new(format!("binary_counter({k}) [x >= 2^{k}]"));
    let zero = b.add_state("0", Output::False);
    let powers: Vec<_> = (0..=k)
        .map(|i| {
            b.add_state(
                format!("2^{i}"),
                if i == k { Output::True } else { Output::False },
            )
        })
        .collect();
    // 2^i, 2^i ↦ 0, 2^{i+1}   for i < k.
    for i in 0..k as usize {
        b.add_transition((powers[i], powers[i]), (zero, powers[i + 1]))
            .expect("states were just declared");
    }
    // a, 2^k ↦ 2^k, 2^k   for every state a (except the silent case a = 2^k).
    let top = powers[k as usize];
    b.add_transition_idempotent((zero, top), (top, top))
        .expect("states were just declared");
    for &power in powers.iter().take(k as usize) {
        b.add_transition_idempotent((power, top), (top, top))
            .expect("states were just declared");
    }
    b.set_input_state("x", powers[0]);
    b.build()
        .expect("binary counter construction is well-formed")
}

/// The threshold computed by [`binary_counter`]`(k)`, i.e. `2^k`.
pub fn binary_counter_threshold(k: u32) -> u64 {
    1u64 << k
}

#[cfg(test)]
mod tests {
    use super::*;
    use popproto_model::Config;

    #[test]
    fn state_count_is_k_plus_2() {
        for k in 0..=6 {
            assert_eq!(binary_counter(k).num_states(), k as usize + 2);
        }
    }

    #[test]
    fn transition_count_is_linear() {
        // k doubling transitions + (k + 1) conversion transitions.
        for k in 1..=6u32 {
            assert_eq!(binary_counter(k).num_transitions() as u32, 2 * k + 1);
        }
    }

    #[test]
    fn threshold_helper() {
        assert_eq!(binary_counter_threshold(0), 1);
        assert_eq!(binary_counter_threshold(3), 8);
        assert_eq!(binary_counter_threshold(10), 1024);
    }

    #[test]
    fn doubling_semantics() {
        let p = binary_counter(2);
        let one = p.state_by_name("2^0").unwrap();
        let two = p.state_by_name("2^1").unwrap();
        let c = Config::singleton(p.num_states(), one, 2);
        let succ = p.successors(&c);
        assert_eq!(succ.len(), 1);
        assert_eq!(succ[0].get(two), 1);
    }

    #[test]
    fn top_state_converts_everyone() {
        let p = binary_counter(2);
        let top = p.state_by_name("2^2").unwrap();
        let zero = p.state_by_name("0").unwrap();
        let mut c = Config::empty(p.num_states());
        c.add(top, 1);
        c.add(zero, 2);
        // After two conversions all agents are in the top state.
        let mid = &p.successors(&c)[0];
        let done = &p.successors(mid)[0];
        assert_eq!(done.get(top), 3);
        assert!(p.is_silent_config(done));
    }

    #[test]
    fn outputs() {
        let p = binary_counter(3);
        assert_eq!(p.output_of(p.state_by_name("2^3").unwrap()), Output::True);
        assert_eq!(p.output_of(p.state_by_name("2^2").unwrap()), Output::False);
        assert_eq!(p.output_of(p.state_by_name("0").unwrap()), Output::False);
    }

    #[test]
    fn is_far_more_succinct_than_flock() {
        let k = 6u32;
        let eta = binary_counter_threshold(k);
        let succinct = binary_counter(k);
        let naive = crate::flock(eta);
        assert!(succinct.num_states() < naive.num_states());
        assert_eq!(naive.num_states() as u64, eta + 1);
        assert_eq!(succinct.num_states() as u64, k as u64 + 2);
    }
}
