//! A uniform handle on the protocol families, for experiment drivers.

use crate::{binary_counter, flock, leader_counter, majority, modulo};
use popproto_model::{Predicate, Protocol};
use serde::{Deserialize, Serialize};

/// A named instance of one of the zoo's protocol families, together with the
/// predicate it is supposed to compute.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FamilyInstance {
    /// The family the instance belongs to (e.g. `"flock"`).
    pub family: String,
    /// The family parameter (threshold, exponent, modulus…), for reporting.
    pub parameter: u64,
    /// The protocol itself.
    pub protocol: Protocol,
    /// The predicate the protocol computes.
    pub predicate: Predicate,
}

impl FamilyInstance {
    fn new(family: &str, parameter: u64, protocol: Protocol, predicate: Predicate) -> Self {
        FamilyInstance {
            family: family.to_string(),
            parameter,
            protocol,
            predicate,
        }
    }
}

/// A small catalogue of instances from every family, sized so that exhaustive
/// verification on population slices stays cheap.  Used by the experiment
/// drivers and the integration tests.
pub fn catalog() -> Vec<FamilyInstance> {
    vec![
        FamilyInstance::new("flock", 3, flock(3), Predicate::threshold_at_least(3)),
        FamilyInstance::new("flock", 5, flock(5), Predicate::threshold_at_least(5)),
        FamilyInstance::new(
            "binary_counter",
            2,
            binary_counter(2),
            Predicate::threshold_at_least(4),
        ),
        FamilyInstance::new(
            "binary_counter",
            3,
            binary_counter(3),
            Predicate::threshold_at_least(8),
        ),
        FamilyInstance::new(
            "leader_counter",
            2,
            leader_counter(2),
            Predicate::threshold_at_least(4),
        ),
        FamilyInstance::new("majority", 0, majority(), Predicate::majority()),
        FamilyInstance::new("modulo", 3, modulo(3, 1), Predicate::count_mod(3, 1)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_nonempty_and_consistent() {
        let cat = catalog();
        assert!(cat.len() >= 6);
        for inst in &cat {
            assert!(!inst.family.is_empty());
            assert!(inst.protocol.num_states() >= 2);
            // Unary instances carry a unary predicate; the majority instance is binary.
            if inst.protocol.is_unary() {
                assert!(inst.predicate.arity() <= 1);
            } else {
                assert_eq!(inst.predicate.arity(), 2);
            }
        }
    }

    #[test]
    fn catalog_contains_each_family() {
        let cat = catalog();
        for family in [
            "flock",
            "binary_counter",
            "leader_counter",
            "majority",
            "modulo",
        ] {
            assert!(
                cat.iter().any(|i| i.family == family),
                "missing family {family}"
            );
        }
    }

    #[test]
    fn thresholds_match_protocol_names() {
        let cat = catalog();
        for inst in &cat {
            if inst.family == "binary_counter" {
                let eta = inst.predicate.as_unary_threshold().unwrap();
                assert_eq!(eta, 1 << inst.parameter);
            }
        }
    }
}
