//! The classical 4-state majority protocol.
//!
//! Agents start in `A` (for variable `x₀`) or `B` (for variable `x₁`).
//! Active agents of opposite camps cancel each other; surviving active agents
//! recruit passive agents; and passive agents drift towards the "no" answer
//! so that ties stabilise on `x₀ > x₁` being false.

use popproto_model::{Output, Protocol, ProtocolBuilder};

/// Builds the 4-state majority protocol deciding `x₀ > x₁`.
///
/// States: active `A`/`B` and passive `a`/`b`; outputs `A, a ↦ 1` and
/// `B, b ↦ 0`.  Transitions:
///
/// * `A, B ↦ a, b` — opposite actives cancel;
/// * `A, b ↦ A, a` and `B, a ↦ B, b` — actives recruit passives;
/// * `a, b ↦ b, b` — passive disagreement resolves towards "no", which makes
///   ties converge to the correct answer (`x₀ > x₁` is false on a tie).
///
/// # Examples
///
/// ```
/// use popproto_zoo::majority;
/// let p = majority();
/// assert_eq!(p.num_states(), 4);
/// assert_eq!(p.input_variables().len(), 2);
/// ```
pub fn majority() -> Protocol {
    let mut b = ProtocolBuilder::new("majority [x0 > x1]");
    let big_a = b.add_state("A", Output::True);
    let big_b = b.add_state("B", Output::False);
    let small_a = b.add_state("a", Output::True);
    let small_b = b.add_state("b", Output::False);
    b.add_transition((big_a, big_b), (small_a, small_b))
        .unwrap();
    b.add_transition((big_a, small_b), (big_a, small_a))
        .unwrap();
    b.add_transition((big_b, small_a), (big_b, small_b))
        .unwrap();
    b.add_transition((small_a, small_b), (small_b, small_b))
        .unwrap();
    b.set_input_state("x0", big_a);
    b.set_input_state("x1", big_b);
    b.build().expect("majority construction is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use popproto_model::Input;

    #[test]
    fn shape() {
        let p = majority();
        assert_eq!(p.num_states(), 4);
        assert_eq!(p.num_transitions(), 4);
        assert!(p.is_leaderless());
        assert!(!p.is_unary());
        assert!(p.is_deterministic());
    }

    #[test]
    fn initial_configuration_places_both_camps() {
        let p = majority();
        let ic = p.initial_config(&Input::from_counts(vec![3, 2]));
        assert_eq!(ic.get(p.state_by_name("A").unwrap()), 3);
        assert_eq!(ic.get(p.state_by_name("B").unwrap()), 2);
        assert_eq!(ic.size(), 5);
    }

    #[test]
    fn cancellation_preserves_difference() {
        let p = majority();
        let ic = p.initial_config(&Input::from_counts(vec![2, 1]));
        // Fire the cancellation A,B ↦ a,b.
        let succ = p.successors(&ic);
        assert_eq!(succ.len(), 1);
        let after = &succ[0];
        assert_eq!(after.get(p.state_by_name("A").unwrap()), 1);
        assert_eq!(after.get(p.state_by_name("B").unwrap()), 0);
        assert_eq!(after.get(p.state_by_name("a").unwrap()), 1);
        assert_eq!(after.get(p.state_by_name("b").unwrap()), 1);
    }

    #[test]
    fn outputs_partition_states() {
        let p = majority();
        assert_eq!(p.states_with_output(Output::True).len(), 2);
        assert_eq!(p.states_with_output(Output::False).len(), 2);
    }
}
