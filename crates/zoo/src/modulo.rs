//! Remainder protocols: `x ≡ r (mod m)`.
//!
//! Active agents carry a value modulo `m`; when two active agents meet, one
//! absorbs both values and the other becomes passive; passive agents copy the
//! verdict of the active agents they meet.  Eventually a single active agent
//! holds the total modulo `m` and converts every passive agent to the correct
//! answer.

use popproto_model::{Output, Protocol, ProtocolBuilder};

/// Builds the protocol deciding `x ≡ r (mod m)` with `m + 2` states.
///
/// # Panics
///
/// Panics if `m == 0` or `r ≥ m`.
///
/// # Examples
///
/// ```
/// use popproto_zoo::modulo;
/// let p = modulo(3, 1);
/// assert_eq!(p.num_states(), 5);
/// ```
pub fn modulo(m: u64, r: u64) -> Protocol {
    assert!(m >= 1, "modulus must be at least 1");
    assert!(r < m, "remainder must be smaller than the modulus");
    let verdict = |v: u64| if v == r { Output::True } else { Output::False };
    let mut b = ProtocolBuilder::new(format!("modulo({m},{r}) [x ≡ {r} (mod {m})]"));
    let active: Vec<_> = (0..m)
        .map(|v| b.add_state(format!("v{v}"), verdict(v)))
        .collect();
    let passive_yes = b.add_state("p1", Output::True);
    let passive_no = b.add_state("p0", Output::False);
    let passive_for = |v: u64| if v == r { passive_yes } else { passive_no };
    // Two actives merge: v_u, v_w ↦ v_{(u+w) mod m}, passive_{verdict}.
    for u in 0..m {
        for w in u..m {
            let sum = (u + w) % m;
            let pre = (active[u as usize], active[w as usize]);
            let post = (active[sum as usize], passive_for(sum));
            if pre != post && (pre.0, pre.1) != (post.1, post.0) {
                b.add_transition_idempotent(pre, post)
                    .expect("states were just declared");
            }
        }
    }
    // Actives correct passives: v, p_* ↦ v, passive_{verdict(v)}.
    for v in 0..m {
        let wrong_passive = if v == r { passive_no } else { passive_yes };
        b.add_transition_idempotent(
            (active[v as usize], wrong_passive),
            (active[v as usize], passive_for(v)),
        )
        .expect("states were just declared");
    }
    b.set_input_state("x", active[(1 % m) as usize]);
    b.build().expect("modulo construction is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use popproto_model::Config;

    #[test]
    fn state_count() {
        for m in 1..=5u64 {
            assert_eq!(modulo(m, 0).num_states() as u64, m + 2);
        }
    }

    #[test]
    #[should_panic(expected = "remainder must be smaller")]
    fn invalid_remainder_panics() {
        let _ = modulo(3, 3);
    }

    #[test]
    fn merging_adds_values_mod_m() {
        let p = modulo(3, 0);
        let v1 = p.state_by_name("v1").unwrap();
        let v2 = p.state_by_name("v2").unwrap();
        let c = Config::singleton(p.num_states(), v1, 1).plus(&Config::singleton(
            p.num_states(),
            v2,
            1,
        ));
        let succ = p.successors(&c);
        assert_eq!(succ.len(), 1);
        // 1 + 2 ≡ 0 (mod 3), which matches the remainder 0, so the passive
        // agent produced is the "yes" passive.
        let v0 = p.state_by_name("v0").unwrap();
        let p1 = p.state_by_name("p1").unwrap();
        assert_eq!(succ[0].get(v0), 1);
        assert_eq!(succ[0].get(p1), 1);
    }

    #[test]
    fn actives_correct_passives() {
        let p = modulo(2, 1);
        let v1 = p.state_by_name("v1").unwrap();
        let p0 = p.state_by_name("p0").unwrap();
        let p1 = p.state_by_name("p1").unwrap();
        let mut c = Config::empty(p.num_states());
        c.add(v1, 1);
        c.add(p0, 1);
        let succ = p.successors(&c);
        assert_eq!(succ.len(), 1);
        assert_eq!(succ[0].get(p1), 1);
        assert_eq!(succ[0].get(p0), 0);
    }

    #[test]
    fn outputs_follow_remainder() {
        let p = modulo(4, 2);
        assert_eq!(p.output_of(p.state_by_name("v2").unwrap()), Output::True);
        assert_eq!(p.output_of(p.state_by_name("v1").unwrap()), Output::False);
        assert_eq!(p.output_of(p.state_by_name("p1").unwrap()), Output::True);
        assert_eq!(p.output_of(p.state_by_name("p0").unwrap()), Output::False);
    }

    #[test]
    fn modulus_one_is_always_true_for_remainder_zero() {
        let p = modulo(1, 0);
        // The single active value state v0 has output 1, as do the passives
        // it produces; x ≡ 0 (mod 1) holds for every x.
        assert_eq!(p.output_of(p.state_by_name("v0").unwrap()), Output::True);
        assert_eq!(p.input_state(0), p.state_by_name("v0").unwrap());
    }
}
