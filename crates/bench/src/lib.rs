//! Shared helpers for the Criterion benchmark harness reproducing the
//! experiments E1–E10 (see DESIGN.md and EXPERIMENTS.md).
//!
//! Every bench uses a short measurement window: the quantities of interest
//! are the *shapes* reported in EXPERIMENTS.md (who wins, by what factor),
//! not absolute nanoseconds.

pub mod naive;

use popproto_model::Protocol;
use popproto_zoo::{binary_counter, flock, leader_counter, modulo};

/// The standard small protocol instances benchmarked across experiments.
pub fn standard_instances() -> Vec<(Protocol, u64)> {
    vec![
        (flock(3), 3),
        (flock(5), 5),
        (binary_counter(2), 4),
        (binary_counter(3), 8),
    ]
}

/// A slightly larger set used by the simulation benches.
pub fn simulation_instances() -> Vec<Protocol> {
    vec![flock(4), binary_counter(3), modulo(3, 1), leader_counter(3)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_are_nonempty_and_leaderless_where_expected() {
        assert!(standard_instances().iter().all(|(p, _)| p.is_leaderless()));
        assert_eq!(simulation_instances().len(), 4);
    }
}
