//! A faithful reimplementation of the *seed's* reachability, stable-set,
//! verification and busy-beaver-enumeration stack, kept as the baseline for
//! the `bench_reach` benchmark and as the reference semantics for the
//! old-vs-new equivalence tests.
//!
//! Characteristics reproduced on purpose (these are the costs the arena/CSR
//! refactor removed — do not "fix" them here):
//!
//! * configurations are interned by cloning each [`Config`] into both a
//!   `Vec<Config>` and a `HashMap<Config, usize>`;
//! * adjacency is `Vec<Vec<usize>>` with a linear `contains` per edge insert;
//! * closures walk `Vec<bool>` seen-arrays;
//! * `naive_verified_threshold` re-explores **every** input slice for every
//!   candidate threshold `η` (the quadratic loop the [`ThresholdProfile`]
//!   replaces);
//! * `naive_busy_beaver_search` runs strictly sequentially and, in its
//!   default full-space mode, enumerates every input-state choice (each of
//!   which is isomorphic to an input-state-0 candidate).
//!
//! [`ThresholdProfile`]: popproto_reach::ThresholdProfile

use popproto_model::{Config, Output, Protocol, ProtocolBuilder, StateId};
use popproto_reach::ExploreLimits;
use std::collections::HashMap;

/// The seed's reachability graph: `HashMap` interning, nested-`Vec` adjacency.
#[derive(Debug, Clone)]
pub struct NaiveReachabilityGraph {
    configs: Vec<Config>,
    index: HashMap<Config, usize>,
    successors: Vec<Vec<usize>>,
    predecessors: Vec<Vec<usize>>,
    initial: Vec<usize>,
    complete: bool,
}

impl NaiveReachabilityGraph {
    /// The seed's BFS exploration, verbatim.
    pub fn explore(protocol: &Protocol, initial: &[Config], limits: &ExploreLimits) -> Self {
        let mut graph = NaiveReachabilityGraph {
            configs: Vec::new(),
            index: HashMap::new(),
            successors: Vec::new(),
            predecessors: Vec::new(),
            initial: Vec::new(),
            complete: true,
        };
        let mut queue: Vec<usize> = Vec::new();
        for c in initial {
            let id = graph.intern(c.clone());
            if !graph.initial.contains(&id) {
                graph.initial.push(id);
            }
            queue.push(id);
        }
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            if graph.configs.len() > limits.max_configs {
                graph.complete = false;
                break;
            }
            let current = graph.configs[id].clone();
            for next in protocol.successors(&current) {
                let known = graph.index.contains_key(&next);
                let next_id = graph.intern(next);
                if !graph.successors[id].contains(&next_id) {
                    graph.successors[id].push(next_id);
                    graph.predecessors[next_id].push(id);
                }
                if !known {
                    queue.push(next_id);
                }
            }
        }
        graph
    }

    fn intern(&mut self, c: Config) -> usize {
        if let Some(&id) = self.index.get(&c) {
            return id;
        }
        let id = self.configs.len();
        self.index.insert(c.clone(), id);
        self.configs.push(c);
        self.successors.push(Vec::new());
        self.predecessors.push(Vec::new());
        id
    }

    /// Number of configurations explored.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Returns `true` if no configuration was explored.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Returns `true` if the exploration terminated without hitting limits.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// The configuration with internal identifier `id`.
    pub fn config(&self, id: usize) -> &Config {
        &self.configs[id]
    }

    /// All explored configurations, in discovery order.
    pub fn configs(&self) -> &[Config] {
        &self.configs
    }

    /// The internal identifier of a configuration, if explored.
    pub fn id_of(&self, c: &Config) -> Option<usize> {
        self.index.get(c).copied()
    }

    /// Identifiers of the initial configurations.
    pub fn initial_ids(&self) -> &[usize] {
        &self.initial
    }

    /// Successor identifiers of a configuration.
    pub fn successors_of(&self, id: usize) -> &[usize] {
        &self.successors[id]
    }

    /// Predecessor identifiers of a configuration.
    pub fn predecessors_of(&self, id: usize) -> &[usize] {
        &self.predecessors[id]
    }

    /// Identifiers of terminal (silent) configurations.
    pub fn terminal_ids(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.successors[i].is_empty())
            .collect()
    }

    /// The set of identifiers backward-reachable from `targets`.
    pub fn backward_closure(&self, targets: &[usize]) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut stack: Vec<usize> = targets.to_vec();
        for &s in targets {
            seen[s] = true;
        }
        while let Some(id) = stack.pop() {
            for &next in &self.predecessors[id] {
                if !seen[next] {
                    seen[next] = true;
                    stack.push(next);
                }
            }
        }
        seen
    }
}

/// The seed's stable sets: per-id `Vec<bool>` flags.
#[derive(Debug, Clone)]
pub struct NaiveStableSets {
    /// `stable0[id]` is `true` iff configuration `id` is 0-stable.
    pub stable0: Vec<bool>,
    /// `stable1[id]` is `true` iff configuration `id` is 1-stable.
    pub stable1: Vec<bool>,
}

impl NaiveStableSets {
    /// Computes the stable sets of all configurations in the graph.
    pub fn compute(protocol: &Protocol, graph: &NaiveReachabilityGraph) -> Self {
        NaiveStableSets {
            stable0: Self::compute_for(protocol, graph, Output::False),
            stable1: Self::compute_for(protocol, graph, Output::True),
        }
    }

    fn compute_for(protocol: &Protocol, graph: &NaiveReachabilityGraph, b: Output) -> Vec<bool> {
        let bad: Vec<usize> = (0..graph.len())
            .filter(|&id| {
                graph
                    .config(id)
                    .iter()
                    .any(|(q, _)| protocol.output_of(q) != b)
            })
            .collect();
        let can_reach_bad = graph.backward_closure(&bad);
        can_reach_bad.iter().map(|&r| !r).collect()
    }

    /// Identifiers of the b-stable configurations.
    pub fn stable_ids(&self, b: Output) -> Vec<usize> {
        let v = match b {
            Output::False => &self.stable0,
            Output::True => &self.stable1,
        };
        v.iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(id, _)| id)
            .collect()
    }
}

/// The seed's per-input verification verdict (the fields the equivalence
/// tests compare).
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveVerdict {
    /// The unary input checked.
    pub input: u64,
    /// The expected output `i ≥ η`.
    pub expected: bool,
    /// Seed notion of correctness on this slice.
    pub correct: bool,
    /// Whether the slice exploration was exhaustive.
    pub exhaustive: bool,
    /// Number of reachable configurations.
    pub reachable_configs: usize,
    /// Number of reachable `φ(i)`-stable configurations.
    pub stable_configs: usize,
}

/// The seed's unary-threshold verification: one exploration + stable-set
/// computation + backward closure per input.
pub fn naive_verify_unary_threshold(
    protocol: &Protocol,
    eta: u64,
    max_input: u64,
    limits: &ExploreLimits,
) -> Vec<NaiveVerdict> {
    (2..=max_input)
        .map(|i| {
            let expected = i >= eta;
            let expected_output = Output::from_bool(expected);
            let ic = protocol.initial_config_unary(i);
            let graph = NaiveReachabilityGraph::explore(protocol, &[ic], limits);
            let stable = NaiveStableSets::compute(protocol, &graph);
            let target_ids = stable.stable_ids(expected_output);
            let can_reach_target = graph.backward_closure(&target_ids);
            let counterexample = (0..graph.len()).find(|&id| !can_reach_target[id]);
            NaiveVerdict {
                input: i,
                expected,
                correct: counterexample.is_none() && !target_ids.is_empty(),
                exhaustive: graph.is_complete(),
                reachable_configs: graph.len(),
                stable_configs: target_ids.len(),
            }
        })
        .collect()
}

/// The seed's `verified_threshold`: re-explores every slice for every
/// candidate `η` (quadratic in `max_input`).
pub fn naive_verified_threshold(
    protocol: &Protocol,
    max_input: u64,
    limits: &ExploreLimits,
) -> Option<u64> {
    for eta in 2..=max_input {
        let verdicts = naive_verify_unary_threshold(protocol, eta, max_input, limits);
        if verdicts.iter().all(|v| v.correct && v.exhaustive) {
            if eta < max_input {
                return Some(eta);
            }
            return None;
        }
    }
    None
}

/// The seed's enumeration result (subset of fields).
#[derive(Debug, Clone)]
pub struct NaiveEnumerationResult {
    /// The largest verified threshold found.
    pub best_eta: Option<u64>,
    /// A protocol witnessing `best_eta`.
    pub witness: Option<Protocol>,
    /// Number of candidates examined.
    pub protocols_examined: u64,
    /// Number of candidates computing some verified threshold.
    pub threshold_protocols: u64,
}

/// The seed's sequential, unpruned busy-beaver search.
///
/// With `fix_input_state = false` this is the seed's exact candidate order:
/// transition functions outermost, then output assignments, then every
/// input-state choice.  With `fix_input_state = true` the input is pinned to
/// state 0, which makes the candidate order *identical* to the refactored
/// search's global index (function · 2ⁿ + outputs) — the mode the
/// capped-prefix equivalence tests rely on.
pub fn naive_busy_beaver_search(
    num_states: usize,
    max_input: u64,
    max_protocols: u64,
    limits: &ExploreLimits,
    fix_input_state: bool,
) -> NaiveEnumerationResult {
    let pairs: Vec<(usize, usize)> = (0..num_states)
        .flat_map(|a| (a..num_states).map(move |b| (a, b)))
        .collect();
    let posts: Vec<(usize, usize)> = pairs.clone();
    let num_pairs = pairs.len();
    let choices = posts.len() as u64;

    let mut result = NaiveEnumerationResult {
        best_eta: None,
        witness: None,
        protocols_examined: 0,
        threshold_protocols: 0,
    };

    let total_functions = (choices as u128).pow(num_pairs as u32);
    let mut function_index: u128 = 0;
    'outer: while function_index < total_functions {
        let mut assignment = Vec::with_capacity(num_pairs);
        let mut rest = function_index;
        for _ in 0..num_pairs {
            assignment.push((rest % choices as u128) as usize);
            rest /= choices as u128;
        }
        let input_states = if fix_input_state { 1 } else { num_states };
        for outputs in 0..(1u32 << num_states) {
            for input_state in 0..input_states {
                if result.protocols_examined >= max_protocols {
                    break 'outer;
                }
                result.protocols_examined += 1;
                let protocol = naive_build_candidate(
                    num_states,
                    &pairs,
                    &posts,
                    &assignment,
                    outputs,
                    input_state,
                );
                if let Some(eta) = naive_verified_threshold(&protocol, max_input, limits) {
                    result.threshold_protocols += 1;
                    if result.best_eta.is_none_or(|best| eta > best) {
                        result.best_eta = Some(eta);
                        result.witness = Some(protocol);
                    }
                }
            }
        }
        function_index += 1;
    }
    result
}

fn naive_build_candidate(
    num_states: usize,
    pairs: &[(usize, usize)],
    posts: &[(usize, usize)],
    assignment: &[usize],
    outputs: u32,
    input_state: usize,
) -> Protocol {
    let mut b = ProtocolBuilder::new(format!("enum-{num_states}"));
    let states: Vec<StateId> = (0..num_states)
        .map(|i| b.add_state(format!("s{i}"), Output::from_bool((outputs >> i) & 1 == 1)))
        .collect();
    for (pair, &post_idx) in pairs.iter().zip(assignment) {
        let post = posts[post_idx];
        if *pair == post {
            continue; // implicit no-op
        }
        b.add_transition_idempotent(
            (states[pair.0], states[pair.1]),
            (states[post.0], states[post.1]),
        )
        .expect("states were just declared");
    }
    b.set_input_state("x", states[input_state]);
    b.build().expect("candidate construction is well-formed")
}
