//! Parallel-segmented ≡ sequential equivalence for the busy-beaver search.
//!
//! The parallel rebuild's contract (see `crates/core/src/segmented.rs` and
//! `crates/exec/README.md`): every reported number except the cross-segment
//! memo hits is an ordered merge of per-segment results, each a pure
//! function of its segment range — so the search is **bit-identical** for
//! any worker count, any segment size, and any kill/resume schedule,
//! including resumes on a *different* worker count than the one that wrote
//! the checkpoint.  These tests pin that contract:
//!
//! * worker counts {1, 2, 4, 7} × random segment sizes reproduce the
//!   sequential single-range pipeline on the same candidate range — stats,
//!   best η, witness set and funnel counters included;
//! * `memo_hits` (segment-local) is deterministic per segmentation, and the
//!   raw total including `memo_hits_cross` is *never* asserted — the
//!   cross-segment count is scheduling-dependent by design;
//! * kill/resume through JSON checkpoints across differing worker counts is
//!   bit-identical to an uninterrupted run;
//! * the entropy segment order processes the same full-range set.

use popproto::candidate_pipeline::{CandidatePipeline, PipelineConfig, PipelineStats};
use popproto::orbit_stream::{OrbitSpace, OrbitStream};
use popproto::segmented::{SegmentationConfig, SegmentedCheckpoint, SegmentedSearch};
use popproto_reach::ExploreLimits;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// A tiny deterministic LCG for reproducible pseudo-random sizes and cuts.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// The PR 4 sequential reference: one pipeline over one range scan.
fn sequential_reference(
    num_states: usize,
    end: u128,
    config: &PipelineConfig,
) -> (PipelineStats, Option<u64>, Vec<u128>) {
    let space = OrbitSpace::new(num_states);
    let mut pipeline = CandidatePipeline::new(num_states, config.clone());
    let mut stream = OrbitStream::range(&space, 0, end);
    while let Some(k) = stream.next_canonical() {
        let outputs = (k % space.output_patterns()) as u32;
        pipeline.offer(&space, k, stream.current_assignment(), outputs);
    }
    let mut stats = pipeline.stats().clone();
    stats.pruned_symmetric = stream.pruned_symmetric();
    (
        stats,
        pipeline.best().map(|b| b.eta),
        pipeline.confirmed().to_vec(),
    )
}

/// Asserts every deterministic counter matches (the memo split is compared
/// separately where the segmentation is identical).
fn assert_deterministic_stats_eq(a: &PipelineStats, b: &PipelineStats, context: &str) {
    assert_eq!(a.canonical_orbits, b.canonical_orbits, "{context}");
    assert_eq!(a.pruned_symmetric, b.pruned_symmetric, "{context}");
    assert_eq!(a.pruned_symbolic, b.pruned_symbolic, "{context}");
    assert_eq!(a.pruned_eta_bounded, b.pruned_eta_bounded, "{context}");
    assert_eq!(a.profiled, b.profiled, "{context}");
    assert_eq!(a.threshold_protocols, b.threshold_protocols, "{context}");
    assert_eq!(a.truncated_orbits, b.truncated_orbits, "{context}");
}

#[test]
fn all_worker_counts_and_random_segment_sizes_match_the_sequential_stream() {
    let limits = ExploreLimits::default();
    let config = PipelineConfig::exact(5, &limits);
    let end = 20_000u128; // a 3-state prefix with plenty of profiled orbits
    let (ref_stats, ref_best, ref_confirmed) = sequential_reference(3, end, &config);
    assert!(ref_stats.threshold_protocols > 0, "trivial reference");

    let mut rng = Lcg(0xa11ce);
    for workers in WORKER_COUNTS {
        let seg_size = rng.next() % 4_000 + 50;
        let segmentation = SegmentationConfig::index_order(seg_size, Some(end));
        let mut search = SegmentedSearch::new(3, config.clone(), segmentation);
        search.run(workers, u64::MAX);
        let result = search.result();
        let context = format!("workers {workers}, segment size {seg_size}");
        assert!(result.finished, "{context}");
        assert_deterministic_stats_eq(&result.stats, &ref_stats, &context);
        assert_eq!(result.best.map(|b| b.eta), ref_best, "{context}");
        assert_eq!(result.confirmed, ref_confirmed, "witness set; {context}");
        // The raw memo total is NOT asserted: memo_hits_cross is
        // scheduling-dependent.  The split invariant that *is* guaranteed:
        // every local hit plus every cross hit answered some canonical
        // orbit that did not run triage.
        assert!(
            result.stats.memo_hits + result.stats.memo_hits_cross <= result.stats.canonical_orbits,
            "{context}"
        );
    }
}

#[test]
fn local_memo_hits_are_deterministic_per_segmentation() {
    // Same segmentation, different worker counts: even the *local* memo
    // hits must come out identical (they are per-segment pure functions);
    // only memo_hits_cross may differ.
    let limits = ExploreLimits::default();
    let config = PipelineConfig::exact(5, &limits);
    let segmentation = SegmentationConfig::index_order(1_024, Some(16_000));
    let mut reference: Option<u64> = None;
    for workers in WORKER_COUNTS {
        let mut search = SegmentedSearch::new(3, config.clone(), segmentation.clone());
        search.run(workers, u64::MAX);
        let hits = search.result().stats.memo_hits;
        match reference {
            None => reference = Some(hits),
            Some(expected) => assert_eq!(hits, expected, "workers {workers}"),
        }
    }
    assert!(
        reference.unwrap() > 0,
        "the 3-state prefix must share restrictions"
    );
}

#[test]
fn kill_resume_across_differing_worker_counts_is_bit_identical() {
    let limits = ExploreLimits::default();
    let config = PipelineConfig::exact(5, &limits);
    let end = 14_000u128;
    let segmentation = SegmentationConfig::index_order(700, Some(end));

    // Uninterrupted single-worker reference.
    let mut straight = SegmentedSearch::new(3, config.clone(), segmentation.clone());
    straight.run(1, u64::MAX);
    let expected = straight.result();
    assert!(expected.finished);

    // Kill after each budget stage, resume on a different worker count,
    // round-tripping the multi-cursor checkpoint through JSON every time.
    let mut rng = Lcg(0x5eed5);
    for round in 0..3 {
        let schedule = [
            (
                WORKER_COUNTS[(rng.next() % 4) as usize],
                rng.next() % 900 + 100,
            ),
            (
                WORKER_COUNTS[(rng.next() % 4) as usize],
                rng.next() % 2_000 + 1_500,
            ),
            (WORKER_COUNTS[(rng.next() % 4) as usize], u64::MAX),
        ];
        let mut search = SegmentedSearch::new(3, config.clone(), segmentation.clone());
        for &(workers, budget) in &schedule {
            search.run(workers, budget);
            let json = serde_json::to_string(&search.checkpoint()).unwrap();
            let checkpoint: SegmentedCheckpoint = serde_json::from_str(&json).unwrap();
            search = SegmentedSearch::from_checkpoint(&checkpoint);
        }
        let result = search.result();
        let context = format!("round {round}, schedule {schedule:?}");
        assert!(result.finished, "{context}");
        assert_deterministic_stats_eq(&result.stats, &expected.stats, &context);
        // Identical segmentation ⟹ even the local memo hits reproduce.
        assert_eq!(
            result.stats.memo_hits, expected.stats.memo_hits,
            "{context}"
        );
        assert_eq!(result.best, expected.best, "{context}");
        assert_eq!(
            result.confirmed, expected.confirmed,
            "witness set; {context}"
        );
        assert_eq!(result.candidates_consumed, expected.candidates_consumed);
    }
}

#[test]
fn entropy_order_covers_the_same_full_range() {
    let limits = ExploreLimits::default();
    let config = PipelineConfig::exact(5, &limits);
    let end = 12_000u128;
    let (ref_stats, ref_best, ref_confirmed) = sequential_reference(3, end, &config);

    for workers in [1, 4] {
        let mut search = SegmentedSearch::new(
            3,
            config.clone(),
            SegmentationConfig::entropy_order(640, Some(end)),
        );
        search.run(workers, u64::MAX);
        let result = search.result();
        assert!(result.finished);
        assert_deterministic_stats_eq(&result.stats, &ref_stats, "entropy full range");
        assert_eq!(result.best.map(|b| b.eta), ref_best);
        assert_eq!(result.confirmed, ref_confirmed, "witness set");
    }
}

/// Instrumentation inertness for the segmented search: running with the
/// tracing gate open and a zero-period heartbeat attached reproduces every
/// deterministic number of a run with the obs layer dark.
#[test]
fn tracing_and_heartbeats_leave_the_segmented_search_bit_identical() {
    use popproto_obs as obs;
    use std::time::Duration;

    let _serial = obs::test_support::serial();
    let limits = ExploreLimits::default();
    let config = PipelineConfig::exact(5, &limits);
    let end = 14_000u128;
    let segmentation = SegmentationConfig::index_order(700, Some(end));

    assert!(!obs::enabled(), "tracing must start disabled");
    let mut dark = SegmentedSearch::new(3, config.clone(), segmentation.clone());
    dark.run(4, u64::MAX);
    let expected = dark.result();
    assert!(expected.finished);

    obs::start();
    let (mut heartbeat, lines) = obs::Heartbeat::shared_buffer(Duration::ZERO);
    let pool = popproto_exec::Pool::new(4);
    let mut lit = SegmentedSearch::new(3, config, segmentation);
    lit.run_with_heartbeat(&pool, u64::MAX, &mut heartbeat);
    let result = lit.result();
    let trace = obs::stop();

    assert!(result.finished);
    assert_deterministic_stats_eq(&result.stats, &expected.stats, "traced run");
    // Identical segmentation ⟹ identical local memo hits even when lit up.
    assert_eq!(result.stats.memo_hits, expected.stats.memo_hits);
    assert_eq!(result.best, expected.best);
    assert_eq!(result.confirmed, expected.confirmed, "witness set");
    assert_eq!(result.candidates_consumed, expected.candidates_consumed);

    // And the byproducts are real: nested segment spans, final heartbeat.
    let json = trace.to_chrome_trace();
    let summary = obs::validate_chrome_trace(&json).expect("trace validates");
    assert!(summary.complete > 0, "segment/wave spans were traced");
    let text = String::from_utf8(lines.lock().unwrap().clone()).unwrap();
    let last = text.lines().last().expect("final heartbeat line");
    assert!(last.contains("\"kind\":\"segmented_heartbeat\""));
    assert!(last.contains("\"final\":true"));
}

#[test]
fn busy_beaver_on_the_pool_matches_every_worker_count() {
    // The ported busy_beaver_search_with_threads must agree across worker
    // counts on everything except the (exempt) memo split.
    use popproto::enumeration::busy_beaver_search_with_threads;
    let limits = ExploreLimits::default();
    let reference = busy_beaver_search_with_threads(3, 5, 9_000, &limits, 1);
    for workers in [2, 4, 7] {
        let result = busy_beaver_search_with_threads(3, 5, 9_000, &limits, workers);
        assert_eq!(result.best_eta, reference.best_eta, "workers {workers}");
        assert_eq!(result.witness, reference.witness, "workers {workers}");
        assert_eq!(result.protocols_examined, reference.protocols_examined);
        assert_eq!(result.threshold_protocols, reference.threshold_protocols);
        assert_eq!(result.pruned_symmetric, reference.pruned_symmetric);
        assert_eq!(result.pruned_symbolic, reference.pruned_symbolic);
        assert_eq!(result.pruned_eta_bounded, reference.pruned_eta_bounded);
        assert_eq!(result.truncated_orbits, reference.truncated_orbits);
    }
}
