//! Streaming-vs-materialized equivalence for the busy-beaver generator and
//! the resumable pipeline.
//!
//! The `BB_det(4)` rung replaced the materialize-and-scan candidate pass
//! with a lazy canonical-orbit stream and a checkpointable search.  These
//! tests pin the contract:
//!
//! * the stream yields **exactly** the canonical orbit set of the old
//!   materialized enumeration, in the same (index) order, for the 2- and
//!   3-state spaces;
//! * checkpoint/resume at arbitrary (pseudo-random) cut points reproduces
//!   the bit-identical `busy_beaver_search` result — stats, best η and
//!   witness included;
//! * the staged pipeline's memoized verdicts equal the unmemoized ones on
//!   every candidate (spot-checked through full-space searches).

use popproto::candidate_pipeline::{
    CandidatePipeline, PipelineConfig, ReachEngine, SearchCheckpoint, StreamingSearch,
};
use popproto::enumeration::{busy_beaver_search_with_threads, verified_threshold};
use popproto::orbit_stream::{OrbitSpace, OrbitStream};
use popproto_reach::ExploreLimits;

/// The old semantics: materialise every canonical candidate index of the
/// space prefix by a straight scan (decode + canonicality test per index).
fn materialized_canonical_orbits(num_states: usize, end: u128) -> Vec<u128> {
    let space = OrbitSpace::new(num_states);
    let end = end.min(space.total_candidates());
    let mut assignment = vec![0usize; space.pairs().len()];
    let mut relabeled = vec![0usize; space.pairs().len()];
    let mut orbits = Vec::new();
    for k in 0..end {
        space.decode_assignment(k / space.output_patterns(), &mut assignment);
        let outputs = (k % space.output_patterns()) as u32;
        if space.is_canonical(&assignment, outputs, &mut relabeled) {
            orbits.push(k);
        }
    }
    orbits
}

/// A tiny deterministic LCG for reproducible pseudo-random cut points.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

#[test]
fn stream_yields_the_materialized_orbit_set_for_two_states() {
    let space = OrbitSpace::new(2);
    let expected = materialized_canonical_orbits(2, u128::MAX);
    let mut stream = OrbitStream::new(&space);
    let mut got = Vec::new();
    while let Some(k) = stream.next_canonical() {
        got.push(k);
    }
    assert_eq!(got, expected, "orbit set or order changed");
    assert_eq!(
        stream.pruned_symmetric() as u128 + got.len() as u128,
        space.total_candidates()
    );
}

#[test]
fn stream_yields_the_materialized_orbit_set_for_three_states() {
    // The full 3-state space has 373 248 encodings; walk all of them.
    let space = OrbitSpace::new(3);
    let expected = materialized_canonical_orbits(3, u128::MAX);
    let mut stream = OrbitStream::new(&space);
    let mut got = Vec::new();
    while let Some(k) = stream.next_canonical() {
        got.push(k);
    }
    assert_eq!(got.len(), expected.len());
    assert_eq!(got, expected, "orbit set or order changed");
}

#[test]
fn randomly_split_ranges_reproduce_the_full_stream() {
    let space = OrbitSpace::new(3);
    let end = 50_000u128;
    let expected = materialized_canonical_orbits(3, end);
    let mut rng = Lcg(0xfeed_beef);
    for _ in 0..3 {
        // Random monotone cut points over [0, end].
        let mut cuts: Vec<u128> = (0..6).map(|_| rng.next() as u128 % end).collect();
        cuts.push(0);
        cuts.push(end);
        cuts.sort_unstable();
        let mut got = Vec::new();
        for w in cuts.windows(2) {
            let mut stream = OrbitStream::range(&space, w[0], w[1]);
            while let Some(k) = stream.next_canonical() {
                got.push(k);
            }
        }
        assert_eq!(got, expected, "cuts {cuts:?}");
    }
}

#[test]
fn checkpoint_resume_reproduces_busy_beaver_bit_identically() {
    // Reference: the one-shot parallel search over the full 2-state space.
    let limits = ExploreLimits::default();
    let reference = busy_beaver_search_with_threads(2, 6, u64::MAX, &limits, 1);

    // Resumable search, killed at pseudo-random points (every kill
    // round-trips the checkpoint through JSON, as a real session would).
    let mut rng = Lcg(0x5eed);
    for round in 0..3 {
        let mut search = StreamingSearch::new(2, PipelineConfig::exact(6, &limits));
        while !search.is_finished() {
            let burst = rng.next() % 29 + 1;
            search.run_for(burst);
            let json = serde_json::to_string(&search.checkpoint()).unwrap();
            let checkpoint: SearchCheckpoint = serde_json::from_str(&json).unwrap();
            search = StreamingSearch::from_checkpoint(&checkpoint);
        }
        let result = search.result();
        assert_eq!(result.best_eta, reference.best_eta, "round {round}");
        assert_eq!(result.witness, reference.witness, "round {round}");
        assert_eq!(
            result.protocols_examined, reference.protocols_examined,
            "round {round}"
        );
        assert_eq!(
            result.threshold_protocols, reference.threshold_protocols,
            "round {round}"
        );
        assert_eq!(
            result.pruned_symmetric, reference.pruned_symmetric,
            "round {round}"
        );
        assert_eq!(
            result.pruned_symbolic, reference.pruned_symbolic,
            "round {round}"
        );
        assert_eq!(
            result.truncated_orbits, reference.truncated_orbits,
            "round {round}"
        );
        // The raw combined memo total is deliberately NOT asserted (the
        // cross-segment count is scheduling-dependent in parallel runs and
        // exempt everywhere).  What *is* guaranteed here: both runs are
        // sequential single-table scans, so their deterministic local-hit
        // counts agree and neither ever touches a shared table.
        assert_eq!(result.memo_hits, reference.memo_hits, "round {round}");
        assert_eq!(result.memo_hits_cross, 0, "round {round}");
        assert_eq!(reference.memo_hits_cross, 0, "round {round}");
    }
}

#[test]
fn capped_prefix_range_pipeline_matches_the_parallel_search_for_three_states() {
    // A 6k-candidate prefix of the 3-state space: a single range-driven
    // pipeline and the thread-parallel search must agree on everything
    // deterministic.
    let limits = ExploreLimits::default();
    let cap = 6_000u64;
    let parallel = busy_beaver_search_with_threads(3, 5, cap, &limits, 4);

    let space = OrbitSpace::new(3);
    let mut pipeline = CandidatePipeline::new(3, PipelineConfig::exact(5, &limits));
    let mut stream = OrbitStream::range(&space, 0, cap as u128);
    while let Some(k) = stream.next_canonical() {
        let outputs = (k % space.output_patterns()) as u32;
        pipeline.offer(&space, k, stream.current_assignment(), outputs);
    }
    let stats = pipeline.stats();
    assert_eq!(stats.threshold_protocols, parallel.threshold_protocols);
    assert_eq!(stream.pruned_symmetric(), parallel.pruned_symmetric);
    assert_eq!(stats.pruned_symbolic, parallel.pruned_symbolic);
    assert_eq!(stats.truncated_orbits, parallel.truncated_orbits);
    let best = pipeline.best();
    assert_eq!(best.map(|b| b.eta), parallel.best_eta);
    if let (Some(b), Some(witness)) = (best, &parallel.witness) {
        assert_eq!(space.protocol_at(b.index), *witness);
        assert_eq!(verified_threshold(witness, 5, &limits), Some(b.eta));
    }
}

#[test]
fn frontier_engine_search_matches_csr_engine_search() {
    let limits = ExploreLimits::default();
    let mut csr_config = PipelineConfig::exact(6, &limits);
    csr_config.engine = ReachEngine::Csr;
    let mut frontier_config = PipelineConfig::exact(6, &limits);
    frontier_config.engine = ReachEngine::Frontier;

    let mut csr = StreamingSearch::new(2, csr_config);
    while !csr.is_finished() {
        csr.run_for(u64::MAX);
    }
    let mut frontier = StreamingSearch::new(2, frontier_config);
    while !frontier.is_finished() {
        frontier.run_for(u64::MAX);
    }
    assert_eq!(csr.stats(), frontier.stats());
    assert_eq!(csr.result().best_eta, frontier.result().best_eta);
    assert_eq!(csr.result().witness, frontier.result().witness);
}
