//! Old-vs-new equivalence: the arena/CSR reachability stack, the bitset
//! stable sets, the profile-based verification and the symmetry-pruned
//! parallel busy-beaver search must reproduce the seed semantics exactly
//! (reference implementation: `popproto_bench::naive`).

use popproto::enumeration::{
    busy_beaver_search, busy_beaver_search_with_threads, verified_threshold,
};
use popproto_bench::naive::{
    naive_busy_beaver_search, naive_verified_threshold, naive_verify_unary_threshold,
    NaiveReachabilityGraph, NaiveStableSets,
};
use popproto_model::{Output, Protocol, ProtocolBuilder};
use popproto_reach::{verify_unary_threshold, ExploreLimits, ReachabilityGraph, StableSets};
use popproto_zoo::{binary_counter, flock, modulo};

fn zoo() -> Vec<Protocol> {
    vec![flock(3), binary_counter(2), modulo(3, 1)]
}

/// The arena-based graph must agree with the seed graph *identifier by
/// identifier*: the BFS discovery order, edge sets and truncation behaviour
/// are part of the contract.
#[test]
fn reachability_graphs_match_the_seed_exactly() {
    let limits = ExploreLimits::default();
    for protocol in zoo() {
        for input in [2u64, 4, 6, 9] {
            let ic = protocol.initial_config_unary(input);
            let old =
                NaiveReachabilityGraph::explore(&protocol, std::slice::from_ref(&ic), &limits);
            let new = ReachabilityGraph::explore(&protocol, &[ic], &limits);
            assert_eq!(old.len(), new.len(), "{} @ {input}", protocol.name());
            assert_eq!(old.is_complete(), new.is_complete());
            assert_eq!(
                old.initial_ids()
                    .iter()
                    .map(|&i| i as u32)
                    .collect::<Vec<_>>(),
                new.initial_ids()
            );
            for id in 0..old.len() {
                assert_eq!(
                    *old.config(id),
                    new.config(id as u32),
                    "{} @ {input}: config {id} differs",
                    protocol.name()
                );
                assert_eq!(
                    old.successors_of(id)
                        .iter()
                        .map(|&s| s as u32)
                        .collect::<Vec<_>>(),
                    new.successors_of(id as u32),
                    "{} @ {input}: successors of {id} differ",
                    protocol.name()
                );
                assert_eq!(
                    old.predecessors_of(id)
                        .iter()
                        .map(|&s| s as u32)
                        .collect::<Vec<_>>(),
                    new.predecessors_of(id as u32),
                    "{} @ {input}: predecessors of {id} differ",
                    protocol.name()
                );
            }
            assert_eq!(
                old.terminal_ids()
                    .iter()
                    .map(|&t| t as u32)
                    .collect::<Vec<_>>(),
                new.terminal_ids()
            );
        }
    }
}

#[test]
fn truncated_explorations_match_the_seed() {
    let p = binary_counter(2);
    for cap in [1usize, 3, 10, 50] {
        let limits = ExploreLimits::with_max_configs(cap);
        let ic = p.initial_config_unary(12);
        let old = NaiveReachabilityGraph::explore(&p, std::slice::from_ref(&ic), &limits);
        let new = ReachabilityGraph::explore(&p, &[ic], &limits);
        assert_eq!(old.len(), new.len(), "cap {cap}");
        assert_eq!(old.is_complete(), new.is_complete(), "cap {cap}");
        for id in 0..old.len() {
            assert_eq!(*old.config(id), new.config(id as u32), "cap {cap} id {id}");
        }
    }
}

#[test]
fn stable_sets_match_the_seed() {
    let limits = ExploreLimits::default();
    for protocol in zoo() {
        for input in [3u64, 5, 8] {
            let ic = protocol.initial_config_unary(input);
            let old_graph =
                NaiveReachabilityGraph::explore(&protocol, std::slice::from_ref(&ic), &limits);
            let new_graph = ReachabilityGraph::explore(&protocol, &[ic], &limits);
            let old = NaiveStableSets::compute(&protocol, &old_graph);
            let new = StableSets::compute(&protocol, &new_graph);
            for id in 0..old_graph.len() {
                assert_eq!(
                    old.stable0[id],
                    new.is_stable(id as u32, Output::False),
                    "{} @ {input}: SC_0 differs at {id}",
                    protocol.name()
                );
                assert_eq!(
                    old.stable1[id],
                    new.is_stable(id as u32, Output::True),
                    "{} @ {input}: SC_1 differs at {id}",
                    protocol.name()
                );
            }
        }
    }
}

#[test]
fn verification_verdicts_match_the_seed() {
    let limits = ExploreLimits::default();
    let mut broken = ProtocolBuilder::new("broken");
    let one = broken.add_state("1", Output::False);
    let _two = broken.add_state("2", Output::True);
    broken.set_input_state("x", one);
    let broken = broken.build().unwrap();

    let instances: Vec<(Protocol, u64, u64)> = vec![
        (flock(3), 3, 8),
        (binary_counter(2), 4, 9),
        (modulo(3, 1), 2, 6),
        (broken, 2, 5),
    ];
    for (protocol, eta, max_input) in instances {
        let old = naive_verify_unary_threshold(&protocol, eta, max_input, &limits);
        let new = verify_unary_threshold(&protocol, eta, max_input, &limits);
        assert_eq!(old.len(), new.verdicts.len());
        for (o, n) in old.iter().zip(&new.verdicts) {
            assert_eq!(o.input, n.input.total(), "{}", protocol.name());
            assert_eq!(o.expected, n.expected, "{} @ {}", protocol.name(), o.input);
            assert_eq!(o.correct, n.correct, "{} @ {}", protocol.name(), o.input);
            assert_eq!(
                o.exhaustive,
                n.exhaustive,
                "{} @ {}",
                protocol.name(),
                o.input
            );
            assert_eq!(
                o.reachable_configs,
                n.reachable_configs,
                "{} @ {}",
                protocol.name(),
                o.input
            );
            assert_eq!(
                o.stable_configs,
                n.stable_configs,
                "{} @ {}",
                protocol.name(),
                o.input
            );
        }
    }
}

/// The profile-based `verified_threshold` must agree with the seed's
/// per-η re-exploration loop on a deterministic sample of random candidates.
#[test]
fn verified_threshold_matches_the_seed_on_random_protocols() {
    let limits = ExploreLimits::default();
    // Hand-rolled LCG so the sample is reproducible without a rand dep.
    let mut state = 0x853c_49e6_748f_ea9bu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let n = 3usize;
    let pairs: Vec<(usize, usize)> = (0..n).flat_map(|a| (a..n).map(move |b| (a, b))).collect();
    for _ in 0..150 {
        let mut b = ProtocolBuilder::new("random");
        let states: Vec<_> = (0..n)
            .map(|i| b.add_state(format!("s{i}"), Output::from_bool(next() % 2 == 1)))
            .collect();
        for &(x, y) in &pairs {
            let (c, d) = pairs[next() % pairs.len()];
            if (x, y) != (c, d) {
                b.add_transition_idempotent((states[x], states[y]), (states[c], states[d]))
                    .unwrap();
            }
        }
        b.set_input_state("x", states[next() % n]);
        let p = b.build().unwrap();
        assert_eq!(
            naive_verified_threshold(&p, 5, &limits),
            verified_threshold(&p, 5, &limits),
            "disagreement on candidate:\n{p}"
        );
    }
}

/// Full-space equivalence for n ≤ 2: the seed search (which also enumerates
/// every input-state choice) and the refactored search (input fixed at state
/// 0, symmetry-pruned, profiled verification) must report the same exact
/// `BB_det(n)`.
#[test]
fn busy_beaver_values_match_the_seed_for_small_n() {
    let limits = ExploreLimits::default();
    for n in [1usize, 2] {
        let old = naive_busy_beaver_search(n, 6, u64::MAX, &limits, false);
        let new = busy_beaver_search(n, 6, u64::MAX, &limits);
        assert_eq!(old.best_eta, new.best_eta, "BB_det({n}) differs");
        if let (Some(eta), Some(old_witness), Some(new_witness)) =
            (new.best_eta, &old.witness, &new.witness)
        {
            assert_eq!(verified_threshold(old_witness, 6, &limits), Some(eta));
            assert_eq!(verified_threshold(new_witness, 6, &limits), Some(eta));
        }
    }
}

/// Capped-prefix equivalence for n = 3: with the input state fixed on both
/// sides, the seed's candidate order equals the refactored search's global
/// index, and the canonical representative of every orbit has the smallest
/// index of the orbit — so both searches agree on any index-prefix of the
/// space, sequentially and in parallel.
#[test]
fn busy_beaver_capped_prefix_matches_for_three_states() {
    let limits = ExploreLimits::default();
    let cap = 6_000u64;
    let old = naive_busy_beaver_search(3, 5, cap, &limits, true);
    let seq = busy_beaver_search_with_threads(3, 5, cap, &limits, 1);
    let par = busy_beaver_search_with_threads(3, 5, cap, &limits, 4);
    assert_eq!(old.protocols_examined, seq.protocols_examined);
    assert_eq!(old.best_eta, seq.best_eta);
    assert_eq!(seq.best_eta, par.best_eta);
    assert_eq!(seq.witness, par.witness);
    assert_eq!(seq.threshold_protocols, par.threshold_protocols);
    assert_eq!(seq.pruned_symmetric, par.pruned_symmetric);
    if let (Some(eta), Some(witness)) = (seq.best_eta, &seq.witness) {
        assert_eq!(verified_threshold(witness, 5, &limits), Some(eta));
    }
}
