//! E6 — the full Section 5 pipeline (Lemma 5.2 / Theorem 5.9): regenerate the
//! empirical-bound-vs-theorem-bound table and benchmark the pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use popproto::experiments::experiment_e6;
use popproto::pipeline::{analyze_leaderless_protocol, PipelineOptions};
use popproto::report::render_e6;
use popproto_bench::standard_instances;
use std::time::Duration;

fn bench_e6(c: &mut Criterion) {
    let rows = experiment_e6(&standard_instances(), &PipelineOptions::default());
    println!("\n[E6] leaderless pipeline\n{}", render_e6(&rows));

    let mut group = c.benchmark_group("e6_pipeline");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (p, _) in standard_instances() {
        group.bench_with_input(
            BenchmarkId::from_parameter(p.name().to_string()),
            &p,
            |b, p| b.iter(|| analyze_leaderless_protocol(p, &PipelineOptions::default())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e6);
criterion_main!(benches);
