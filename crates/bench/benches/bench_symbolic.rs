//! Symbolic-engine benchmark: the all-`n` fixpoint machinery against the
//! per-`n` enumerative loop, and the busy-beaver pre-filter on the real
//! `BB_det(3)` candidate space.
//!
//! Emits a machine-readable `BENCH_symbolic.json` at the workspace root with
//! three measurements:
//!
//! * `fixpoint_vs_enumerative` — wall time of a full symbolic analysis +
//!   all-`n` certification vs the enumerative threshold profile over the
//!   slices `2..=16`, per zoo threshold protocol.  The comparison
//!   understates the symbolic advantage: the enumerative side only ever
//!   decides 15 slices, the symbolic side decides *all* of them.
//! * `prefilter` — over a prefix of the canonical 3-state candidate space:
//!   how many candidates the staged symbolic pre-filter rejects, and the
//!   aggregate cost of filtering vs concretely profiling those rejected
//!   candidates (the work the old search performed on them).
//! * `e7_with_prefilter` — the full `BB_det(3)` search with the pre-filter
//!   wired in: total time, the exact value (must stay 3), and the number of
//!   orbits rejected before any concrete slice was built, including one
//!   `example_rejection` whose old-path exploration cost is spelled out.

use criterion::{criterion_group, criterion_main, Criterion};
use popproto::enumeration::{busy_beaver_search, decode_candidate};
use popproto_model::Protocol;
use popproto_reach::{unary_threshold_profile, ExploreLimits, ReachabilityGraph};
use popproto_symbolic::{threshold_prefilter, SymbolicLimits, SymbolicVerifier};
use popproto_zoo::{binary_counter, flock, leader_counter};
use std::time::{Duration, Instant};

fn bench_symbolic_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("symbolic_analyze");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let p = flock(3);
    group.bench_function("flock3_analyze_and_certify", |b| {
        b.iter(|| {
            let verifier = SymbolicVerifier::analyze(&p, &SymbolicLimits::default());
            assert!(verifier.certify_threshold(3).is_certified());
        })
    });
    group.finish();
}

fn emit_bench_json(_c: &mut Criterion) {
    let mut entries: Vec<String> = Vec::new();
    let limits = SymbolicLimits::default();
    let explore = ExploreLimits::default();

    // 1. Symbolic fixpoint vs the per-n enumerative loop.
    let instances: Vec<(Protocol, u64)> = vec![
        (flock(3), 3),
        (flock(5), 5),
        (binary_counter(2), 4),
        (binary_counter(3), 8),
        (leader_counter(2), 4),
    ];
    let mut rows: Vec<String> = Vec::new();
    for (p, eta) in &instances {
        let start = Instant::now();
        let verifier = SymbolicVerifier::analyze(p, &limits);
        let verdict = verifier.certify_threshold(*eta);
        let symbolic_seconds = start.elapsed().as_secs_f64();
        assert!(verdict.is_certified(), "{}: {verdict:?}", p.name());

        let max_slice = 16u64;
        let start = Instant::now();
        let profile = unary_threshold_profile(p, max_slice, &explore);
        let enumerative_seconds = start.elapsed().as_secs_f64();
        assert!(profile.supports(*eta));
        println!(
            "[symbolic] {}: all-n certificate in {symbolic_seconds:.4}s vs \
             {enumerative_seconds:.4}s for slices 2..={max_slice} ({})",
            p.name(),
            verdict.summary()
        );
        rows.push(format!(
            "    {{\"protocol\": \"{}\", \"eta\": {eta}, \"verdict\": \"{}\", \"symbolic_seconds\": {symbolic_seconds:.6}, \"enumerative_slices\": {max_slice}, \"enumerative_seconds\": {enumerative_seconds:.6}}}",
            p.name(),
            verdict.summary()
        ));
    }
    entries.push(format!(
        "  \"fixpoint_vs_enumerative\": [\n{}\n  ]",
        rows.join(",\n")
    ));

    // 2. The pre-filter over a prefix of the 3-state candidate space: cost
    // of filtering vs the concrete profiling the old search spent on the
    // rejected candidates.
    let prefilter_limits = SymbolicLimits::prefilter();
    let max_input = 6u64;
    let sample = 20_000u128;
    let mut rejected = 0usize;
    let mut filter_seconds = 0f64;
    let mut profile_seconds = 0f64;
    let mut example: Option<(u128, usize, usize)> = None;
    for k in 0..sample {
        let candidate = decode_candidate(3, k);
        let start = Instant::now();
        let may_compute = threshold_prefilter(&candidate, max_input, &prefilter_limits);
        filter_seconds += start.elapsed().as_secs_f64();
        if may_compute {
            continue;
        }
        rejected += 1;
        let start = Instant::now();
        let profile = unary_threshold_profile(&candidate, max_input, &explore);
        profile_seconds += start.elapsed().as_secs_f64();
        assert_eq!(
            profile.verified_threshold(),
            None,
            "prefilter rejected a verifying candidate {k}"
        );
        if example.is_none() && !profile.inputs.is_empty() {
            // Old-path cost of this candidate: every slice the profile
            // explored, with its concrete configuration count.
            let slices = profile.inputs.len();
            let configs: usize = (2..=max_input)
                .map(|i| {
                    ReachabilityGraph::explore(
                        &candidate,
                        &[candidate.initial_config_unary(i)],
                        &explore,
                    )
                    .len()
                })
                .sum();
            example = Some((k, slices, configs));
        }
    }
    let (ex_k, ex_slices, ex_configs) = example.expect("some candidate is rejected");
    println!(
        "[symbolic] prefilter on {sample} candidates: {rejected} rejected in \
         {filter_seconds:.3}s (profiling those costs {profile_seconds:.3}s); \
         e.g. candidate {ex_k} previously explored {ex_configs} configs over {ex_slices} slices"
    );
    entries.push(format!(
        "  \"prefilter\": {{\n    \"states\": 3,\n    \"max_input\": {max_input},\n    \"candidates_sampled\": {sample},\n    \"rejected\": {rejected},\n    \"filter_seconds\": {filter_seconds:.4},\n    \"old_path_profile_seconds\": {profile_seconds:.4},\n    \"example_rejection\": {{\"candidate_index\": {ex_k}, \"old_path_slices\": {ex_slices}, \"old_path_configs_explored\": {ex_configs}}}\n  }}"
    ));

    // 3. The full BB_det(3) search with the pre-filter wired in.
    let start = Instant::now();
    let result = busy_beaver_search(3, max_input, u64::MAX, &explore);
    let seconds = start.elapsed().as_secs_f64();
    assert_eq!(result.best_eta, Some(3), "BB_det(3) must not change");
    assert!(result.pruned_symbolic > 0, "the pre-filter never fired");
    println!(
        "[symbolic] BB_det(3) = {:?} in {seconds:.2}s: {} orbits rejected symbolically \
         before any concrete slice, {} pruned by symmetry, {} threshold protocols",
        result.best_eta,
        result.pruned_symbolic,
        result.pruned_symmetric,
        result.threshold_protocols
    );
    entries.push(format!(
        "  \"e7_with_prefilter\": {{\n    \"states\": 3,\n    \"max_input\": {max_input},\n    \"best_eta\": {},\n    \"seconds\": {seconds:.3},\n    \"pruned_symbolic\": {},\n    \"pruned_symmetric\": {},\n    \"threshold_protocols\": {}\n  }}",
        result.best_eta.map(|e| e.to_string()).unwrap_or_else(|| "null".into()),
        result.pruned_symbolic,
        result.pruned_symmetric,
        result.threshold_protocols
    ));

    let json = format!("{{\n{}\n}}\n", entries.join(",\n"));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_symbolic.json");
    std::fs::write(path, &json).expect("failed to write BENCH_symbolic.json");
    println!("[symbolic] wrote {path}");
}

criterion_group!(benches, bench_symbolic_analysis, emit_bench_json);
criterion_main!(benches);
