//! Reach/enumeration benchmark: the arena/CSR exploration stack and the
//! symmetry-pruned busy-beaver search against faithful reimplementations of
//! the seed's code paths (`popproto_bench::naive`).
//!
//! Besides the Criterion groups, this bench emits a machine-readable
//! `BENCH_reach.json` at the workspace root with four measurements:
//!
//! * `exploration` — wall time to explore bounded slices, seed graph
//!   (`HashMap<Config, usize>` + `Vec<Vec<usize>>`) vs arena/CSR;
//! * `verification` — seed per-input verification vs the bitset-fixpoint
//!   pipeline on the same slices;
//! * `large_slice` — a slice whose configuration count exceeds the seed's
//!   default `ExploreLimits` cap (200k): previously truncated, now explored
//!   to completion under the new default;
//! * `frontier_vs_dense` — the same 411k-config slice explored by the
//!   frontier-compressed engine (no stored adjacency, backward fixpoints by
//!   delta regeneration) vs the dense CSR path, with both peak heap numbers
//!   (the `exploration` rows also carry per-slice arena heap bytes now);
//! * `e7` — the full busy-beaver search at n ∈ {2, 3} (same `max_input`,
//!   both uncapped, so both sides report the exact fragment value), seed
//!   loop vs the parallel, symmetry-pruned, profile-verified search.  The
//!   acceptance criterion is a ≥4× wall-clock improvement at n = 3 with the
//!   same reported `best_eta`.
//!
//! The n = 3 seed baseline alone takes minutes (it walks all 1.1M candidates
//! sequentially with per-η re-exploration), so the default run — what CI's
//! bench-smoke job executes — measures only the cheap rows and leaves the
//! committed `BENCH_reach.json` untouched.  Set `BENCH_REACH_FULL=1` to run
//! the full matrix and regenerate the JSON.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use popproto::enumeration::busy_beaver_search;
use popproto_bench::naive::{
    naive_busy_beaver_search, naive_verify_unary_threshold, NaiveReachabilityGraph,
};
use popproto_model::Output;
use popproto_reach::{verify_unary_threshold, ExploreLimits, FrontierGraph, ReachabilityGraph};
use popproto_zoo::binary_counter;
use std::time::{Duration, Instant};

fn bench_exploration(c: &mut Criterion) {
    let p = binary_counter(3);
    let mut group = c.benchmark_group("reach_explore");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for input in [15u64, 25] {
        let ic = p.initial_config_unary(input);
        group.bench_with_input(BenchmarkId::new("seed", input), &input, |b, _| {
            b.iter(|| {
                NaiveReachabilityGraph::explore(
                    &p,
                    std::slice::from_ref(&ic),
                    &ExploreLimits::default(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("arena", input), &input, |b, _| {
            b.iter(|| {
                ReachabilityGraph::explore(&p, std::slice::from_ref(&ic), &ExploreLimits::default())
            })
        });
    }
    group.finish();
}

/// Single-shot wall-clock measurements written to BENCH_reach.json.
/// (The Criterion-timed E7 search itself lives in `bench_e7_enumeration.rs`;
/// this bench only adds the seed-vs-new comparison rows.)
fn emit_bench_json(_c: &mut Criterion) {
    let limits = ExploreLimits::default();
    let mut entries: Vec<String> = Vec::new();

    // 1. Exploration: seed graph vs arena/CSR on growing slices.
    let mut rows: Vec<String> = Vec::new();
    let p = binary_counter(3);
    for input in [20u64, 30, 40] {
        let ic = p.initial_config_unary(input);
        let start = Instant::now();
        let old = NaiveReachabilityGraph::explore(&p, std::slice::from_ref(&ic), &limits);
        let old_seconds = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let new = ReachabilityGraph::explore(&p, &[ic], &limits);
        let new_seconds = start.elapsed().as_secs_f64();
        assert_eq!(old.len(), new.len());
        let speedup = old_seconds / new_seconds;
        println!(
            "[reach] explore {} @ {input}: {} configs, seed {old_seconds:.4}s -> arena \
             {new_seconds:.4}s ({speedup:.1}x)",
            p.name(),
            new.len()
        );
        rows.push(format!(
            "    {{\"protocol\": \"{}\", \"input\": {input}, \"configs\": {}, \"edges\": {}, \"seed_seconds\": {old_seconds:.6}, \"arena_seconds\": {new_seconds:.6}, \"speedup\": {speedup:.2}, \"arena_heap_bytes\": {}, \"graph_heap_bytes\": {}}}",
            p.name(),
            new.len(),
            new.num_edges(),
            new.arena().heap_bytes(),
            new.heap_bytes()
        ));
    }
    entries.push(format!("  \"exploration\": [\n{}\n  ]", rows.join(",\n")));

    // 2. Verification: seed per-input loop vs bitset pipeline.
    let mut rows: Vec<String> = Vec::new();
    for (protocol, eta, max_input) in [(binary_counter(2), 4u64, 16u64), (binary_counter(3), 8, 20)]
    {
        let start = Instant::now();
        let old = naive_verify_unary_threshold(&protocol, eta, max_input, &limits);
        let old_seconds = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let new = verify_unary_threshold(&protocol, eta, max_input, &limits);
        let new_seconds = start.elapsed().as_secs_f64();
        assert!(old.iter().all(|v| v.correct) && new.all_correct());
        let speedup = old_seconds / new_seconds;
        println!(
            "[reach] verify {} (eta {eta}, inputs <= {max_input}): seed {old_seconds:.4}s -> \
             {new_seconds:.4}s ({speedup:.1}x)",
            protocol.name()
        );
        rows.push(format!(
            "    {{\"protocol\": \"{}\", \"eta\": {eta}, \"max_input\": {max_input}, \"seed_seconds\": {old_seconds:.6}, \"new_seconds\": {new_seconds:.6}, \"speedup\": {speedup:.2}}}",
            protocol.name()
        ));
    }
    entries.push(format!("  \"verification\": [\n{}\n  ]", rows.join(",\n")));

    // 3. A slice beyond the seed's default cap: binary_counter(3) at input 80
    // has ~411k reachable configurations — the seed default (200k) truncated
    // it, the arena default (1M) completes it.
    let p = binary_counter(3);
    let input = 80u64;
    let ic = p.initial_config_unary(input);
    let seed_limits = ExploreLimits::with_max_configs(ExploreLimits::SEED_DEFAULT_MAX_CONFIGS);
    let truncated = ReachabilityGraph::explore(&p, std::slice::from_ref(&ic), &seed_limits);
    let start = Instant::now();
    let full = ReachabilityGraph::explore(&p, &[ic], &limits);
    let seconds = start.elapsed().as_secs_f64();
    assert!(!truncated.is_complete());
    assert!(full.is_complete());
    println!(
        "[reach] large slice {} @ {input}: {} configs in {seconds:.2}s (seed cap {} -> truncated), \
         arena heap {:.1} MB",
        p.name(),
        full.len(),
        ExploreLimits::SEED_DEFAULT_MAX_CONFIGS,
        full.arena().heap_bytes() as f64 / 1e6
    );
    entries.push(format!(
        "  \"large_slice\": {{\n    \"protocol\": \"{}\",\n    \"input\": {input},\n    \"configs\": {},\n    \"seed_default_cap\": {},\n    \"seed_default_complete\": {},\n    \"new_default_complete\": {},\n    \"seconds\": {seconds:.3},\n    \"arena_heap_mb\": {:.1}\n  }}",
        p.name(),
        full.len(),
        ExploreLimits::SEED_DEFAULT_MAX_CONFIGS,
        truncated.is_complete(),
        full.is_complete(),
        full.arena().heap_bytes() as f64 / 1e6
    ));

    // 3b. Frontier-compressed vs dense CSR on the 411k-config slice: same
    // exact exploration, but the frontier engine stores no adjacency — peak
    // memory is the arena plus closure bitsets.  Both peaks go into the
    // JSON; the stable-sets computation is included on the frontier side so
    // the regenerated backward fixpoints are part of the measurement.  The
    // dense side reuses the section-3 graph and its timing (same protocol,
    // input and limits) instead of re-exploring.
    let ic = p.initial_config_unary(input);
    let (dense, dense_seconds) = (full, seconds);
    let start = Instant::now();
    let mut frontier = FrontierGraph::explore(&p, std::slice::from_ref(&ic), &limits);
    let frontier_explore_seconds = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let frontier_stable = frontier.stable_sets(&p);
    let frontier_stable_seconds = start.elapsed().as_secs_f64();
    let dense_stable = popproto_reach::StableSets::compute(&p, &dense);
    for b in [Output::False, Output::True] {
        assert_eq!(
            dense_stable.bitset(b),
            frontier_stable.bitset(b),
            "frontier stable sets must match the CSR computation"
        );
    }
    assert!(dense.is_complete() && frontier.is_complete());
    assert_eq!(dense.len(), frontier.len());
    assert!(
        frontier.peak_bytes() < dense.heap_bytes(),
        "frontier peak {} must undercut dense {}",
        frontier.peak_bytes(),
        dense.heap_bytes()
    );
    println!(
        "[reach] frontier vs dense {} @ {input}: {} configs; dense {dense_seconds:.2}s / \
         {:.1} MB (arena {:.1} MB + CSR), frontier {frontier_explore_seconds:.2}s explore + \
         {frontier_stable_seconds:.2}s stable sets / {:.1} MB peak ({:.1}x less memory)",
        p.name(),
        frontier.len(),
        dense.heap_bytes() as f64 / 1e6,
        dense.arena().heap_bytes() as f64 / 1e6,
        frontier.peak_bytes() as f64 / 1e6,
        dense.heap_bytes() as f64 / frontier.peak_bytes() as f64
    );
    entries.push(format!(
        "  \"frontier_vs_dense\": {{\n    \"protocol\": \"{}\",\n    \"input\": {input},\n    \"configs\": {},\n    \"edges\": {},\n    \"dense_seconds\": {dense_seconds:.3},\n    \"dense_peak_bytes\": {},\n    \"dense_arena_bytes\": {},\n    \"frontier_explore_seconds\": {frontier_explore_seconds:.3},\n    \"frontier_stable_sets_seconds\": {frontier_stable_seconds:.3},\n    \"frontier_peak_bytes\": {},\n    \"memory_ratio\": {:.2}\n  }}",
        p.name(),
        frontier.len(),
        dense.num_edges(),
        dense.heap_bytes(),
        dense.arena().heap_bytes(),
        frontier.peak_bytes(),
        dense.heap_bytes() as f64 / frontier.peak_bytes() as f64
    ));

    // 4. E7 at n in {2, 3}, both sides uncapped over their full candidate
    // spaces (the seed also enumerates every input-state choice; every such
    // candidate is isomorphic to an input-0 candidate, so both searches
    // compute the same exact fragment value).  The n = 3 seed baseline costs
    // minutes, so it only runs under BENCH_REACH_FULL=1.
    let full = std::env::var_os("BENCH_REACH_FULL").is_some();
    let e7_matrix: &[(usize, u64)] = if full { &[(2, 6), (3, 6)] } else { &[(2, 6)] };
    if !full {
        println!(
            "[E7] BENCH_REACH_FULL not set: skipping the n = 3 seed baseline and keeping the \
             committed BENCH_reach.json"
        );
    }
    let mut rows: Vec<String> = Vec::new();
    for &(n, max_input) in e7_matrix {
        let start = Instant::now();
        let old = naive_busy_beaver_search(n, max_input, u64::MAX, &limits, false);
        let old_seconds = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let new = busy_beaver_search(n, max_input, u64::MAX, &limits);
        let new_seconds = start.elapsed().as_secs_f64();
        assert_eq!(old.best_eta, new.best_eta, "BB_det({n}) must not change");
        let speedup = old_seconds / new_seconds;
        println!(
            "[E7] BB_det({n}) = {:?} (max_input {max_input}): seed {old_seconds:.2}s \
             ({} candidates) -> {new_seconds:.2}s ({} candidates, {} pruned) = {speedup:.1}x",
            new.best_eta, old.protocols_examined, new.protocols_examined, new.pruned_symmetric
        );
        rows.push(format!(
            "    {{\"states\": {n}, \"max_input\": {max_input}, \"best_eta\": {}, \"seed_seconds\": {old_seconds:.4}, \"seed_candidates\": {}, \"new_seconds\": {new_seconds:.4}, \"new_candidates\": {}, \"pruned_symmetric\": {}, \"threshold_protocols\": {}, \"speedup\": {speedup:.2}}}",
            new.best_eta.map(|e| e.to_string()).unwrap_or_else(|| "null".into()),
            old.protocols_examined,
            new.protocols_examined,
            new.pruned_symmetric,
            new.threshold_protocols
        ));
    }
    entries.push(format!(
        "  \"e7_busy_beaver\": [\n{}\n  ]",
        rows.join(",\n")
    ));

    let json = format!("{{\n{}\n}}\n", entries.join(",\n"));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_reach.json");
    if full {
        std::fs::write(path, &json).expect("failed to write BENCH_reach.json");
        println!("[reach] wrote {path}");
    } else {
        println!("[reach] smoke run complete (set BENCH_REACH_FULL=1 to regenerate {path})");
    }
}

criterion_group!(benches, bench_exploration, emit_bench_json);
criterion_main!(benches);
