//! E3 — Lemma 4.1/4.2 pumping certificates and the Theorem 4.5 bound:
//! regenerate the certificate table and benchmark the Dickson-style search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use popproto::certificate::search_pumping_certificate;
use popproto::experiments::experiment_e3;
use popproto_bench::standard_instances;
use popproto_reach::ExploreLimits;
use std::time::Duration;

fn bench_e3(c: &mut Criterion) {
    let rows = experiment_e3(&standard_instances(), 12);
    println!("\n[E3] pumping certificates (empirical anchor a vs true η)");
    for row in &rows {
        println!(
            "  {}: true η = {}, certificate anchor = {:?}, Theorem 4.5 ϑ(n) = {}",
            row.protocol,
            row.true_eta,
            row.certificate.as_ref().map(|c| c.a),
            row.ackermann_bound.basis_size_bound
        );
    }

    let mut group = c.benchmark_group("e3_search_certificate");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for (p, eta) in standard_instances() {
        group.bench_with_input(
            BenchmarkId::from_parameter(p.name().to_string()),
            &p,
            |b, p| b.iter(|| search_pumping_certificate(p, eta + 6, &ExploreLimits::default())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e3);
criterion_main!(benches);
