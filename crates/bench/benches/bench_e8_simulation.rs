//! E8 — simulated parallel convergence time of the zoo families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use popproto::experiments::experiment_e8;
use popproto::report::render_e8;
use popproto_sim::{run_until_convergence, ConvergenceCriterion, Simulator};
use popproto_zoo::binary_counter;
use std::time::Duration;

fn bench_e8(c: &mut Criterion) {
    let rows = experiment_e8(&[32, 64, 128], 3, 3_000_000);
    println!("\n[E8] simulated parallel time\n{}", render_e8(&rows));

    let mut group = c.benchmark_group("e8_simulate_to_silence");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for n in [64u64, 128, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let p = binary_counter(3);
            b.iter(|| {
                let mut sim = Simulator::new(p.clone(), p.initial_config_unary(n), 42);
                run_until_convergence(&mut sim, ConvergenceCriterion::Silent, 10_000_000)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e8);
criterion_main!(benches);
