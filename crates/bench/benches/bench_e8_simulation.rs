//! E8 — simulated parallel convergence time of the zoo families, plus the
//! sequential-vs-batched engine comparison.
//!
//! Besides the Criterion groups, this bench emits a machine-readable
//! `BENCH_sim.json` at the workspace root with six measurements:
//!
//! * `sequential_vs_naive` — throughput of the reworked sequential engine
//!   against a faithful reimplementation of the seed's `step()` loop
//!   (config clone per interaction, `Vec` allocation per candidate lookup,
//!   full-protocol silence scan per iteration);
//! * `engine_comparison` — wall time per parallel time unit for both
//!   engines at n ∈ {10⁴, 10⁶, 10⁸};
//! * `acceptance` — the batched engine driving approximate majority at
//!   n = 10⁸ to a 10⁶-parallel-time-unit target (it stabilises and goes
//!   silent long before, which the engine detects and fast-forwards);
//! * `ensemble_throughput` — per-trajectory wall time of the lockstep
//!   ensemble engine at K ∈ {1, 16, 256} lanes against the same trajectories
//!   run as independent batched simulations, at n ∈ {10⁴, 10⁶}, tagged with
//!   `host_cpus` / `time_sliced` so plateaus on starved hosts read as what
//!   they are;
//! * `wave_phase_breakdown` — cumulative per-phase wall time of the
//!   ensemble waves at n = 10⁶, K = 256, making the pairing *and split*
//!   shares machine-checkable, with per-phase before/after rows against
//!   the committed pre-cached-sampler baseline;
//! * `sampler_crossovers` — ns/draw of the public samplers at parameter
//!   points straddling each planner threshold (`URN_MAX_DRAWS`,
//!   `POPCOUNT_MAX_N`, `BERN_MAX_N`, `BTRS_MIN_MEAN`,
//!   `ALIAS_DRAWS_PER_CANDIDATE`), the measurements behind the threshold
//!   table in `sampling.rs`, plus cached-setup rows comparing the scalar
//!   entry points (plan rebuilt per draw) against
//!   `CachedHypergeometric` / `CachedBinomial` constructed once outside
//!   the loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use popproto::experiments::experiment_e8;
use popproto::report::render_e8;
use popproto_model::{Config, Input, Pair, Protocol};
use popproto_sim::{
    fused_delta_apply, fused_delta_apply_same, run_until_convergence, BatchedSimulator,
    ConvergenceCriterion, EnsembleSimulator, SimulationEngine, Simulator,
};
use popproto_zoo::{approximate_majority, binary_counter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// A faithful reimplementation of the seed repository's sequential loop, as
/// the baseline for the throughput comparison: clone-per-fire, allocation
/// per candidate lookup, O(|Q|) scheduler scan, and a full silence scan per
/// `run` iteration.
struct NaiveSimulator {
    protocol: Protocol,
    config: Config,
    rng: StdRng,
    interactions: u64,
}

impl NaiveSimulator {
    fn new(protocol: Protocol, config: Config, seed: u64) -> Self {
        NaiveSimulator {
            protocol,
            config,
            rng: StdRng::seed_from_u64(seed),
            interactions: 0,
        }
    }

    fn select_pair(&mut self) -> (usize, usize) {
        let n = self.config.size();
        let mut first = 0usize;
        let mut index = self.rng.gen_range(0..n);
        for (q, count) in self.config.iter() {
            if index < count {
                first = q.index();
                break;
            }
            index -= count;
        }
        let mut remaining = self.rng.gen_range(0..n - 1);
        let mut second = 0usize;
        for (q, count) in self.config.iter() {
            let available = if q.index() == first { count - 1 } else { count };
            if remaining < available {
                second = q.index();
                break;
            }
            remaining -= available;
        }
        (first, second)
    }

    fn step(&mut self) -> bool {
        self.interactions += 1;
        let (a, b) = self.select_pair();
        let pair = Pair::new(a.into(), b.into());
        let candidates = self.protocol.transitions_from(pair); // allocates
        if candidates.is_empty() {
            return false;
        }
        let t_idx = candidates[self.rng.gen_range(0..candidates.len())];
        let transition = self.protocol.transitions()[t_idx];
        match transition.fire(&self.config) {
            // `fire` clones the whole configuration — the seed hot path.
            Some(next) if next != self.config => {
                self.config = next;
                true
            }
            _ => false,
        }
    }

    /// The seed's silence test: attempt to *fire* every transition (cloning
    /// a configuration per enabled transition) and compare successors.
    fn is_silent(&self) -> bool {
        self.protocol
            .transitions()
            .iter()
            .all(|t| t.is_silent() || t.fire(&self.config).is_none_or(|next| next == self.config))
    }

    fn run(&mut self, max_interactions: u64) -> u64 {
        for i in 0..max_interactions {
            // The seed re-derived silence from scratch every iteration.
            if self.is_silent() {
                return i;
            }
            self.step();
        }
        max_interactions
    }
}

fn bench_e8(c: &mut Criterion) {
    let rows = experiment_e8(&[32, 64, 128], 3, 3_000_000);
    println!("\n[E8] simulated parallel time\n{}", render_e8(&rows));

    let mut group = c.benchmark_group("e8_simulate_to_silence");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [64u64, 128, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let p = binary_counter(3);
            b.iter(|| {
                let mut sim = Simulator::new(p.clone(), p.initial_config_unary(n), 42);
                run_until_convergence(&mut sim, ConvergenceCriterion::Silent, 10_000_000)
            })
        });
    }
    group.finish();
}

/// Criterion comparison: one parallel time unit (n interactions) per engine.
fn bench_engine_comparison(c: &mut Criterion) {
    let p = approximate_majority();
    let mut group = c.benchmark_group("e8_engine_parallel_time_unit");
    group
        .sample_size(2)
        .measurement_time(Duration::from_secs(1));
    for n in [10_000u64, 1_000_000, 100_000_000] {
        let input = Input::from_counts(vec![2 * n / 3, n - 2 * n / 3]);
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, &n| {
            let ic = p.initial_config(&input);
            b.iter(|| {
                let mut sim = Simulator::new(p.clone(), ic.clone(), 7);
                sim.advance(n)
            })
        });
        group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, &n| {
            let ic = p.initial_config(&input);
            b.iter(|| {
                let mut sim = BatchedSimulator::new(p.clone(), ic.clone(), 7);
                sim.advance(n)
            })
        });
    }
    group.finish();
}

/// Throughput of the ensemble engine's inner kernel: the branch-free
/// slice-arithmetic delta apply over the lane dimension.  Divide the
/// reported time per iteration by the lane count for per-lane cost; a
/// scalar (non-packed) u64 loop on this hardware sustains well under 1
/// lane/ns, so multi-lane/ns throughput is the vectorisation witness.
fn bench_fused_delta_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_fused_delta_apply");
    for lanes in [256usize, 4096] {
        let mut lo = vec![1_000u64; lanes];
        let mut hi = vec![1_000u64; lanes];
        let mut row = vec![1_000u64; lanes];
        let m = vec![1u64; lanes];
        group.bench_with_input(BenchmarkId::new("two_rows", lanes), &lanes, |b, _| {
            b.iter(|| fused_delta_apply(&mut lo, &mut hi, &m))
        });
        group.bench_with_input(BenchmarkId::new("same_row", lanes), &lanes, |b, _| {
            b.iter(|| fused_delta_apply_same(&mut row, &m))
        });
    }
    group.finish();
}

/// Single-shot wall-clock measurements written to BENCH_sim.json.
fn emit_bench_json(_c: &mut Criterion) {
    let p = approximate_majority();
    let mut entries: Vec<String> = Vec::new();

    // 1. Reworked sequential engine vs the seed step() loop, on the workload
    // every experiment actually runs: simulate to silence.  The seed loop
    // pays an O(T) fire-with-clone silence scan per interaction (worst near
    // convergence, where nothing short-circuits) plus a `Vec` allocation per
    // candidate lookup, so its cost grows with the transition count while
    // the engine's stays flat.
    let mut naive_rows: Vec<String> = Vec::new();
    let budget = 50_000_000u64;
    let throughput_workloads: Vec<(Protocol, Config)> = vec![
        (
            p.clone(),
            p.initial_config(&Input::from_counts(vec![6_666, 3_334])),
        ),
        (
            popproto_zoo::flock(32),
            popproto_zoo::flock(32).initial_config_unary(3_000),
        ),
        (
            popproto_zoo::flock(64),
            popproto_zoo::flock(64).initial_config_unary(2_000),
        ),
        (
            popproto_zoo::binary_counter(6),
            popproto_zoo::binary_counter(6).initial_config_unary(3_000),
        ),
    ];
    for (protocol, ic) in &throughput_workloads {
        let start = Instant::now();
        let mut naive = NaiveSimulator::new(protocol.clone(), ic.clone(), 7);
        let naive_done = naive.run(budget).max(1);
        let naive_seconds = start.elapsed().as_secs_f64();
        let naive_ns = naive_seconds * 1e9 / naive_done as f64;

        let start = Instant::now();
        let mut engine = Simulator::new(protocol.clone(), ic.clone(), 7);
        let engine_done = engine.advance(budget).max(1);
        let engine_seconds = start.elapsed().as_secs_f64();
        let engine_ns = engine_seconds * 1e9 / engine_done as f64;

        let speedup = naive_ns / engine_ns;
        println!(
            "[E8] {} to silence: seed loop {naive_ns:.1} ns/interaction -> engine \
             {engine_ns:.1} ns/interaction ({speedup:.1}x)",
            protocol.name()
        );
        naive_rows.push(format!(
            "    {{\"protocol\": \"{}\", \"states\": {}, \"transitions\": {}, \"naive_ns_per_interaction\": {naive_ns:.2}, \"engine_ns_per_interaction\": {engine_ns:.2}, \"speedup\": {speedup:.2}}}",
            protocol.name(),
            protocol.num_states(),
            protocol.num_transitions()
        ));
    }
    entries.push(format!(
        "  \"sequential_vs_naive\": [\n{}\n  ]",
        naive_rows.join(",\n")
    ));

    // 2. Seconds per parallel time unit, per engine and population.
    let mut comparison_rows: Vec<String> = Vec::new();
    for n in [10_000u64, 1_000_000, 100_000_000] {
        let input = Input::from_counts(vec![2 * n / 3, n - 2 * n / 3]);
        let ic = p.initial_config(&input);
        let start = Instant::now();
        let mut sim = Simulator::new(p.clone(), ic.clone(), 7);
        sim.advance(n);
        let seq_seconds = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let mut sim = BatchedSimulator::new(p.clone(), ic.clone(), 7);
        sim.advance(n);
        let bat_seconds = start.elapsed().as_secs_f64();
        println!(
            "[E8] one parallel time unit at n = {n}: sequential {seq_seconds:.4}s, \
             batched {bat_seconds:.6}s"
        );
        comparison_rows.push(format!(
            "    {{\"population\": {n}, \"sequential_seconds_per_unit\": {seq_seconds:.6}, \"batched_seconds_per_unit\": {bat_seconds:.6}}}"
        ));
    }
    entries.push(format!(
        "  \"engine_comparison\": [\n{}\n  ]",
        comparison_rows.join(",\n")
    ));

    // 3. Acceptance: 10⁶ parallel time units of approximate majority at
    // n = 10⁸ on the batched engine.
    let n = 100_000_000u64;
    let target_parallel_time = 1_000_000u64;
    let input = Input::from_counts(vec![2 * n / 3, n - 2 * n / 3]);
    let ic = p.initial_config(&input);
    let start = Instant::now();
    let mut sim = BatchedSimulator::new(p.clone(), ic, 7);
    let budget = n.saturating_mul(target_parallel_time);
    sim.advance(budget);
    let wall = start.elapsed().as_secs_f64();
    let silent = sim.is_silent();
    let reached = sim.parallel_time();
    println!(
        "[E8] acceptance: n = 10^8, target 10^6 parallel time units: \
         stabilised at parallel time {reached:.1} (silent: {silent}) in {wall:.2}s wall"
    );
    entries.push(format!(
        "  \"acceptance\": {{\n    \"protocol\": \"approximate_majority\",\n    \"population\": {n},\n    \"parallel_time_target\": {target_parallel_time},\n    \"parallel_time_reached\": {reached:.2},\n    \"silent\": {silent},\n    \"wall_seconds\": {wall:.3}\n  }}"
    ));

    // 4. Ensemble engine: per-trajectory wall time at K lanes against the
    // same number of independent `BatchedSimulator` runs (identical seeds, so
    // both sides simulate bit-identical trajectories).  Interleaved min-of-2
    // reps filter scheduler noise on the shared benchmark host; a short
    // warm-up advance precedes each timed window so one-time setup (plan
    // tables, allocation) is excluded.  Since the O(1)-expected rejection
    // samplers (HRUA/BTRS) replaced the data-dependent walks in the pairing
    // pass, the per-lane sampler cost no longer grows with sd = Θ(n^¼), so
    // the ensemble's edge at n = 10⁶ reflects table-pass amortisation
    // rather than being capped by serial walk time.  `host_cpus` and
    // `time_sliced` record whether the host could actually run anything in
    // parallel — on a single-core container every speedup here is a
    // time-sliced measurement, not a parallel one.
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let time_sliced = host_cpus == 1;
    let mut ensemble_rows: Vec<String> = Vec::new();
    for n in [10_000u64, 1_000_000] {
        let input = Input::from_counts(vec![n / 2 + n / 20, n - n / 2 - n / 20]);
        let ic = p.initial_config(&input);
        let warmup = n / 10;
        let budget = 2 * n;
        for k in [1usize, 16, 256] {
            let seeds: Vec<u64> = (0..k as u64).collect();
            let mut ens_best = f64::INFINITY;
            let mut solo_best = f64::INFINITY;
            for _ in 0..2 {
                let mut ens = EnsembleSimulator::new(p.clone(), ic.clone(), &seeds);
                ens.advance_uniform(warmup);
                let t0 = Instant::now();
                ens.advance_uniform(budget);
                ens_best = ens_best.min(t0.elapsed().as_secs_f64() / k as f64);

                let mut solo_total = 0.0;
                for &s in &seeds {
                    let mut solo = BatchedSimulator::new(p.clone(), ic.clone(), s);
                    solo.advance(warmup);
                    let t1 = Instant::now();
                    solo.advance(budget);
                    solo_total += t1.elapsed().as_secs_f64();
                }
                solo_best = solo_best.min(solo_total / k as f64);
            }
            let speedup = solo_best / ens_best;
            println!(
                "[E8] ensemble n = {n}, K = {k}: {:.3} ms/trajectory vs solo batched \
                 {:.3} ms/trajectory ({speedup:.2}x)",
                ens_best * 1e3,
                solo_best * 1e3
            );
            ensemble_rows.push(format!(
                "    {{\"population\": {n}, \"lanes\": {k}, \"parallel_time_units\": 2, \"ensemble_seconds_per_trajectory\": {ens_best:.6}, \"solo_batched_seconds_per_trajectory\": {solo_best:.6}, \"speedup_vs_batched\": {speedup:.3}, \"host_cpus\": {host_cpus}, \"time_sliced\": {time_sliced}}}"
            ));
        }
    }
    entries.push(format!(
        "  \"ensemble_throughput\": [\n{}\n  ]",
        ensemble_rows.join(",\n")
    ));

    // 5. Per-phase wave breakdown at the acceptance point (n = 10⁶,
    // K = 256): where does ensemble wave time actually go?  The breakdown
    // is reset after warmup so one-time setup never pollutes the shares.
    // Three identical repetitions are measured (same seeds, so
    // bit-identical trajectories and identical work) and the fastest
    // kept — the min-over-reps convention of `ensemble_throughput`
    // above, with one extra rep because the per-phase speedup gates are
    // tighter than a throughput edge and a single preempted rep would
    // fail them spuriously on the shared single-core host.  The `phases`
    // rows pair each phase's measured cumulative ns with the committed
    // pre-cached-sampler baseline (same workload, same warmup
    // discipline), so the split-phase speedup is machine-checkable as
    // `baseline_ns / ns` without digging through git history.
    {
        let n = 1_000_000u64;
        let k = 256usize;
        let input = Input::from_counts(vec![n / 2 + n / 20, n - n / 2 - n / 20]);
        let ic = p.initial_config(&input);
        let seeds: Vec<u64> = (0..k as u64).collect();
        // One rep of the workload under the requested kernel routing.  The
        // trajectories are bit-identical under both settings (that is the
        // simd crate's tested contract), so the pair times identical work.
        let measure_rep = |force_scalar: bool| -> popproto_sim::WavePhaseBreakdown {
            popproto_sim::simd_control::set_force_scalar(force_scalar);
            let mut ens = EnsembleSimulator::new(p.clone(), ic.clone(), &seeds);
            ens.advance_uniform(n / 10);
            ens.reset_phase_breakdown();
            ens.advance_uniform(2 * n);
            popproto_sim::simd_control::set_force_scalar(false);
            ens.phase_breakdown()
        };
        // Interleaved reps (off, on, off, on, ...) so host noise hits both
        // settings evenly; min kept per setting.
        let mut best: Option<popproto_sim::WavePhaseBreakdown> = None;
        let mut best_scalar: Option<popproto_sim::WavePhaseBreakdown> = None;
        for _ in 0..3 {
            let scalar_ph = measure_rep(true);
            if best_scalar
                .as_ref()
                .is_none_or(|b| scalar_ph.total_ns() < b.total_ns())
            {
                best_scalar = Some(scalar_ph);
            }
            let ph = measure_rep(false);
            if best.as_ref().is_none_or(|b| ph.total_ns() < b.total_ns()) {
                best = Some(ph);
            }
        }
        let ph = best.expect("three reps measured");
        let scalar_ph = best_scalar.expect("three scalar reps measured");
        let total = ph.total_ns().max(1) as f64;
        let pairing_share = ph.pairing_share();
        let split_share = ph.split_share();
        println!(
            "[E8] wave phases at n = {n}, K = {k}: {} waves, pairing {:.1}% \
             (classification {:.1}%, split {:.1}%, apply {:.1}%, collision {:.1}%, silence {:.1}%)",
            ph.waves,
            100.0 * pairing_share,
            100.0 * ph.classification_ns as f64 / total,
            100.0 * split_share,
            100.0 * ph.apply_ns as f64 / total,
            100.0 * ph.collision_ns as f64 / total,
            100.0 * ph.silence_ns as f64 / total,
        );
        // Committed baseline: the wave_phase_breakdown recorded by the
        // pre-cached-sampler build at this exact workload (waves 3265).
        let baseline: [(&str, u64, u64); 6] = [
            ("classification", ph.classification_ns, 9_899_798),
            ("split", ph.split_ns, 436_684_483),
            ("pairing", ph.pairing_ns, 294_634_259),
            ("apply", ph.apply_ns, 1_121_846),
            ("collision", ph.collision_ns, 25_429_450),
            ("silence", ph.silence_ns, 3_241_620),
        ];
        let phase_rows: Vec<String> = baseline
            .iter()
            .map(|&(name, ns, base)| {
                let speedup = base as f64 / ns.max(1) as f64;
                format!(
                    "      {{\"phase\": \"{name}\", \"ns\": {ns}, \"baseline_ns\": {base}, \"speedup_vs_baseline\": {speedup:.3}}}"
                )
            })
            .collect();
        println!(
            "[E8] split phases: {} ns vs baseline 436684483 ns ({:.2}x), split share {:.1}%",
            ph.split_ns,
            436_684_483.0 / ph.split_ns.max(1) as f64,
            100.0 * split_share,
        );

        // Paired simd rows: the same workload with the vector kernels
        // engaged vs forced onto the scalar path, same binary, interleaved
        // reps.  With the feature off both rows run the scalar path and
        // the ratio reads ~1.0 — `compiled: false` marks the pair as a
        // no-op A/A rather than a failed A/B.
        let (simd_active, cpu_features) = popproto_sim::simd_control::status();
        let simd_compiled = popproto_sim::simd_control::COMPILED;
        let split_speedup = scalar_ph.split_ns as f64 / ph.split_ns.max(1) as f64;
        println!(
            "[E8] simd split A/B (compiled {simd_compiled}, active {simd_active}, {cpu_features}): \
             off {} ns -> on {} ns ({split_speedup:.2}x)",
            scalar_ph.split_ns, ph.split_ns,
        );
        let simd_pair = |label: &str, b: &popproto_sim::WavePhaseBreakdown| {
            format!(
                "      {{\"simd\": \"{label}\", \"waves\": {}, \"split_ns\": {}, \"pairing_ns\": {}, \"classification_ns\": {}, \"total_ns\": {}}}",
                b.waves,
                b.split_ns,
                b.pairing_ns,
                b.classification_ns,
                b.total_ns(),
            )
        };
        let simd_json = format!(
            "\"simd\": {{\n      \"compiled\": {simd_compiled},\n      \"active\": {simd_active},\n      \"cpu_features\": \"{cpu_features}\",\n      \"host_cpus\": {host_cpus},\n      \"time_sliced\": {time_sliced},\n      \"split_speedup_on_vs_off\": {split_speedup:.3},\n      \"rows\": [\n{},\n{}\n      ]\n    }}",
            simd_pair("off", &scalar_ph),
            simd_pair("on", &ph),
        );
        entries.push(format!(
            "  \"wave_phase_breakdown\": {{\n    \"population\": {n},\n    \"lanes\": {k},\n    \"waves\": {},\n    \"classification_ns\": {},\n    \"split_ns\": {},\n    \"pairing_ns\": {},\n    \"apply_ns\": {},\n    \"collision_ns\": {},\n    \"silence_ns\": {},\n    \"pairing_share\": {pairing_share:.4},\n    \"split_share\": {split_share:.4},\n    \"baseline_waves\": 3265,\n    \"host_cpus\": {host_cpus},\n    \"time_sliced\": {time_sliced},\n    {simd_json},\n    \"phases\": [\n{}\n    ]\n  }}",
            ph.waves,
            ph.classification_ns,
            ph.split_ns,
            ph.pairing_ns,
            ph.apply_ns,
            ph.collision_ns,
            ph.silence_ns,
            phase_rows.join(",\n"),
        ));
    }

    // 6. Sampler-crossover sweep: ns/draw of the public entry points at
    // parameter points straddling each planner threshold.  The `leaf`
    // labels restate the planner's routing (kept in sync with the
    // threshold table in sampling.rs); the timings are what justify the
    // constants, and retuning should start from this table.
    {
        use popproto_sim::sampling::{binomial, hypergeometric};
        let mut rng = StdRng::seed_from_u64(0xC505);
        let mut crossover_rows: Vec<String> = Vec::new();
        let reps = 200_000u64;

        // URN_MAX_DRAWS = 16: the urn walk vs HRUA rejection, draws sweep.
        for (draws, leaf) in [(2u64, "urn"), (8, "urn"), (16, "urn"), (17, "hrua")] {
            let t0 = Instant::now();
            let mut acc = 0u64;
            for _ in 0..reps {
                acc += hypergeometric(&mut rng, 4_000, 1_500, draws);
            }
            let ns = t0.elapsed().as_nanos() as f64 / reps as f64;
            std::hint::black_box(acc);
            crossover_rows.push(format!(
                "    {{\"family\": \"hypergeometric_draws\", \"total\": 4000, \"successes\": 1500, \"draws\": {draws}, \"leaf\": \"{leaf}\", \"ns_per_draw\": {ns:.1}}}"
            ));
        }

        // HRUA is flat across spread: the PR 6 mode-inversion band (its
        // walk length grew with sd) is gone, so this sweep documents that
        // one leaf now covers every draws > URN_MAX_DRAWS regime.
        for (draws, leaf) in [
            (100u64, "hrua"),
            (400, "hrua"),
            (500, "hrua"),
            (2_000, "hrua"),
        ] {
            let t0 = Instant::now();
            let mut acc = 0u64;
            for _ in 0..reps {
                acc += hypergeometric(&mut rng, 8_000, 4_000, draws);
            }
            let ns = t0.elapsed().as_nanos() as f64 / reps as f64;
            std::hint::black_box(acc);
            crossover_rows.push(format!(
                "    {{\"family\": \"hypergeometric_sd\", \"total\": 8000, \"successes\": 4000, \"draws\": {draws}, \"leaf\": \"{leaf}\", \"ns_per_draw\": {ns:.1}}}"
            ));
        }

        // POPCOUNT_MAX_N = 1024 (p = ½ only), BERN_MAX_N = 32, and
        // BTRS_MIN_MEAN = 10: the popcount family across word counts and
        // its BTRS fallback past the cap; Bernoulli-vs-BTRS across n at
        // p = 0.4; CDF-vs-BTRS at large n via small p.
        for (n, p_bin, leaf) in [
            (64u64, 0.5f64, "pop"),
            (512, 0.5, "pop"),
            (1_024, 0.5, "pop"),
            (1_025, 0.5, "btrs"),
            (16, 0.4, "bern"),
            (32, 0.4, "bern"),
            (33, 0.4, "btrs"),
            (10_000, 0.0009, "cdf"),
            (10_000, 0.0011, "btrs"),
            (10_000, 0.4, "btrs"),
        ] {
            let t0 = Instant::now();
            let mut acc = 0u64;
            for _ in 0..reps {
                acc += binomial(&mut rng, n, p_bin);
            }
            let ns = t0.elapsed().as_nanos() as f64 / reps as f64;
            std::hint::black_box(acc);
            crossover_rows.push(format!(
                "    {{\"family\": \"binomial\", \"n\": {n}, \"p\": {p_bin}, \"leaf\": \"{leaf}\", \"ns_per_draw\": {ns:.1}}}"
            ));
        }

        // ALIAS_DRAWS_PER_CANDIDATE = 8: categorical draws vs the binomial
        // chain for a 3-candidate split (crossover at m = 16), plus the
        // 2-candidate split, which always takes the chain — a single
        // Binomial(m, ½) resolved by the popcount leaf.
        {
            use popproto_sim::{split_candidates_uniform, AliasTable};
            let table3 = AliasTable::uniform(3);
            let table2 = AliasTable::uniform(2);
            let mut out3 = [0u64; 3];
            let mut out2 = [0u64; 2];
            for (m, c, leaf) in [
                (4u64, 3usize, "alias"),
                (16, 3, "alias"),
                (17, 3, "chain"),
                (256, 3, "chain"),
                (17, 2, "chain_pop"),
                (256, 2, "chain_pop"),
            ] {
                let t0 = Instant::now();
                for _ in 0..reps {
                    if c == 3 {
                        split_candidates_uniform(&mut rng, m, &table3, &mut out3);
                    } else {
                        split_candidates_uniform(&mut rng, m, &table2, &mut out2);
                    }
                }
                let ns = t0.elapsed().as_nanos() as f64 / reps as f64;
                std::hint::black_box(&out3);
                std::hint::black_box(&out2);
                crossover_rows.push(format!(
                    "    {{\"family\": \"candidate_split\", \"m\": {m}, \"candidates\": {c}, \"leaf\": \"{leaf}\", \"ns_per_split\": {ns:.1}}}"
                ));
            }
        }

        // Setup amortisation: the scalar entry points replan on every call
        // (parameter validation, leaf selection, and all float setup —
        // ln-gamma constants for HRUA, BTRS constants, pmf0 for the CDF
        // walk), while the cached handles pay that once at construction.
        // The `_ext` / `_stirling` rows pin the two-level log-factorial
        // regimes: totals ≤ 2 105 344 are table loads, beyond is the
        // Stirling kernel.  Single-shot wall timings, so rows carry
        // `host_cpus` / `time_sliced` like every other wall measurement.
        {
            use popproto_sim::{CachedBinomial, CachedHypergeometric};
            for (total, successes, draws, leaf) in [
                (4_000u64, 1_500u64, 900u64, "hrua_table"),
                (1_000_000, 400_000, 300, "hrua_ext"),
                (10_000_000, 4_000_000, 500, "hrua_stirling"),
                (1_000_000, 500_000, 100, "half_pop"),
            ] {
                let t0 = Instant::now();
                let mut acc = 0u64;
                for _ in 0..reps {
                    acc += hypergeometric(&mut rng, total, successes, draws);
                }
                let scalar_ns = t0.elapsed().as_nanos() as f64 / reps as f64;
                let cached = CachedHypergeometric::new(total, successes, draws);
                let t0 = Instant::now();
                for _ in 0..reps {
                    acc += cached.draw(&mut rng);
                }
                let cached_ns = t0.elapsed().as_nanos() as f64 / reps as f64;
                std::hint::black_box(acc);
                let amort = scalar_ns / cached_ns.max(1e-9);
                crossover_rows.push(format!(
                    "    {{\"family\": \"cached_hypergeometric\", \"total\": {total}, \"successes\": {successes}, \"draws\": {draws}, \"leaf\": \"{leaf}\", \"scalar_ns_per_draw\": {scalar_ns:.1}, \"cached_ns_per_draw\": {cached_ns:.1}, \"setup_amortisation\": {amort:.2}, \"host_cpus\": {host_cpus}, \"time_sliced\": {time_sliced}}}"
                ));
            }
            for (n_bin, p_bin, leaf) in [
                (800u64, 0.5f64, "pop"),
                (10_000, 0.0009, "cdf"),
                (1_000_000, 0.25, "btrs"),
            ] {
                let t0 = Instant::now();
                let mut acc = 0u64;
                for _ in 0..reps {
                    acc += binomial(&mut rng, n_bin, p_bin);
                }
                let scalar_ns = t0.elapsed().as_nanos() as f64 / reps as f64;
                let cached = CachedBinomial::new(n_bin, p_bin);
                let t0 = Instant::now();
                for _ in 0..reps {
                    acc += cached.draw(&mut rng);
                }
                let cached_ns = t0.elapsed().as_nanos() as f64 / reps as f64;
                std::hint::black_box(acc);
                let amort = scalar_ns / cached_ns.max(1e-9);
                crossover_rows.push(format!(
                    "    {{\"family\": \"cached_binomial\", \"n\": {n_bin}, \"p\": {p_bin}, \"leaf\": \"{leaf}\", \"scalar_ns_per_draw\": {scalar_ns:.1}, \"cached_ns_per_draw\": {cached_ns:.1}, \"setup_amortisation\": {amort:.2}, \"host_cpus\": {host_cpus}, \"time_sliced\": {time_sliced}}}"
                ));
            }
        }
        // Paired simd planning rows: `CachedHypergeometric::new_many` over
        // a 256-key batch — the divider/sqrt plan chain is the vectorised
        // shape — with the vector kernels engaged vs forced scalar, same
        // binary, interleaved reps.  With the feature off both settings run
        // the scalar planner and the ratio reads ~1.0 (`simd_compiled`
        // marks the pair as an A/A control).
        {
            use popproto_sim::CachedHypergeometric;
            let (simd_active, cpu_features) = popproto_sim::simd_control::status();
            let simd_compiled = popproto_sim::simd_control::COMPILED;
            for (total, successes, leaf) in [
                (1_000_000u64, 400_000u64, "hrua_ext"),
                (10_000_000, 4_000_000, "hrua_stirling"),
            ] {
                let keys: Vec<(u64, u64, u64)> = (0..256u64)
                    .map(|i| (total, successes, 200 + 7 * i))
                    .collect();
                let reps_plan = 400u32;
                let mut out = Vec::new();
                let mut ns = [f64::INFINITY; 2]; // [on, off]
                for _ in 0..3 {
                    for (slot, force) in [(1usize, true), (0, false)] {
                        popproto_sim::simd_control::set_force_scalar(force);
                        let t0 = Instant::now();
                        for _ in 0..reps_plan {
                            CachedHypergeometric::new_many(&keys, &mut out);
                            std::hint::black_box(&out);
                        }
                        let per_plan = t0.elapsed().as_nanos() as f64
                            / (f64::from(reps_plan) * keys.len() as f64);
                        popproto_sim::simd_control::set_force_scalar(false);
                        ns[slot] = ns[slot].min(per_plan);
                    }
                }
                let speedup = ns[1] / ns[0].max(1e-9);
                println!(
                    "[E8] simd plan batch ({leaf}, active {simd_active}): \
                     off {:.1} ns/plan -> on {:.1} ns/plan ({speedup:.2}x)",
                    ns[1], ns[0],
                );
                crossover_rows.push(format!(
                    "    {{\"family\": \"simd_plan_batch\", \"total\": {total}, \"successes\": {successes}, \"batch\": 256, \"leaf\": \"{leaf}\", \"plan_ns_simd_off\": {:.1}, \"plan_ns_simd_on\": {:.1}, \"speedup_on_vs_off\": {speedup:.2}, \"simd_compiled\": {simd_compiled}, \"simd_active\": {simd_active}, \"cpu_features\": \"{cpu_features}\", \"host_cpus\": {host_cpus}, \"time_sliced\": {time_sliced}}}",
                    ns[1], ns[0],
                ));
            }
        }

        // Multi-stream uniform block throughput: 256 per-lane xoshiro
        // streams advanced one uniform each, vector lockstep vs the scalar
        // per-stream loop.  This is the block shape where the multi-stream
        // kernel amortises its state transposes; the rejection loop's
        // ~2-uniforms-per-lane gathers do not (see crates/simd/README.md),
        // which is why `hrua_lockstep` stays scalar.
        #[cfg(feature = "simd")]
        {
            let (simd_active, cpu_features) = popproto_sim::simd_control::status();
            if simd_active {
                let lanes = 256usize;
                let rounds = 100_000u32;
                let mut rngs: Vec<StdRng> = (0..lanes)
                    .map(|i| StdRng::seed_from_u64(0xB10C + i as u64))
                    .collect();
                let t0 = Instant::now();
                let mut acc = 0.0f64;
                for _ in 0..rounds {
                    for r in &mut rngs {
                        acc += r.gen_range(0.0..1.0f64);
                    }
                }
                let scalar_ns = t0.elapsed().as_nanos() as f64 / (f64::from(rounds) * lanes as f64);
                let mut states: Vec<[u64; 4]> = rngs.iter().map(|r| r.state()).collect();
                let mut out = vec![0.0f64; lanes];
                let t0 = Instant::now();
                for _ in 0..rounds {
                    let done = popproto_simd::xoshiro_uniform_prefix(&mut states, &mut out);
                    debug_assert_eq!(done, lanes);
                    acc += out[0];
                }
                let simd_ns = t0.elapsed().as_nanos() as f64 / (f64::from(rounds) * lanes as f64);
                std::hint::black_box(acc);
                let speedup = scalar_ns / simd_ns.max(1e-9);
                println!(
                    "[E8] simd uniform block ({cpu_features}): scalar {scalar_ns:.2} ns/uniform \
                     -> vector {simd_ns:.2} ns/uniform ({speedup:.2}x over 256-lane blocks)"
                );
                crossover_rows.push(format!(
                    "    {{\"family\": \"simd_uniform_block\", \"lanes\": {lanes}, \"uniforms\": {}, \"leaf\": \"xoshiro256**\", \"scalar_ns_per_uniform\": {scalar_ns:.2}, \"simd_ns_per_uniform\": {simd_ns:.2}, \"speedup_on_vs_off\": {speedup:.2}, \"cpu_features\": \"{cpu_features}\", \"host_cpus\": {host_cpus}, \"time_sliced\": {time_sliced}}}",
                    u64::from(rounds) * lanes as u64,
                ));
            }
        }

        entries.push(format!(
            "  \"sampler_crossovers\": [\n{}\n  ]",
            crossover_rows.join(",\n")
        ));
    }

    let json = format!("{{\n{}\n}}\n", entries.join(",\n"));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    std::fs::write(path, &json).expect("failed to write BENCH_sim.json");
    println!("[E8] wrote {path}");
}

criterion_group!(
    benches,
    bench_e8,
    bench_engine_comparison,
    bench_fused_delta_apply,
    emit_bench_json
);
criterion_main!(benches);
