//! Busy-beaver pipeline benchmark: the streaming, staged, resumable
//! `BB_det(4)` prefix search (experiment E12), its **parallel segmented**
//! rebuild on the work-stealing pool, and the `BB_det(3)` soundness gate,
//! emitting `BENCH_bb.json`.
//!
//! Modes:
//!
//! * **smoke** (default, what CI matrix-runs on every push at
//!   `BENCH_BB_WORKERS` ∈ {1, 4}): a small-budget E12 prefix, the
//!   sequential kill/resume exercise, the segmented run at the requested
//!   worker count with (a) a funnel bit-identity assert against the
//!   sequential stream and (b) a multi-cursor kill/resume assert across a
//!   *different* worker count, plus the fingerprint-canonicalization
//!   hit-rate delta.  The committed `BENCH_bb.json` is left untouched.
//! * **full** (`BENCH_BB_FULL=1`): streams 10⁶ canonical 4-state orbits
//!   sequentially and at 1/2/4/8 workers (the `parallel_scaling` section),
//!   asserts funnel/best/witness bit-identity at every worker count,
//!   re-runs `BB_det(3)` against the PR 3 reference values as a
//!   bit-identity gate, measures the canonicalization delta at scale, runs
//!   an entropy-ordered prefix for contrast, and regenerates
//!   `BENCH_bb.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use popproto::candidate_pipeline::{PipelineStats, SearchCheckpoint, StreamingSearch};
use popproto::enumeration::busy_beaver_search;
use popproto::experiments::{
    e12_pipeline_config, e12_report_from, e12_segmented_report_from, e12_segmented_search,
    E12SegmentedReport,
};
use popproto::orbit_stream::SegmentOrder;
use popproto::segmented::{SegmentedCheckpoint, SegmentedSearch};
use popproto_reach::ExploreLimits;
use std::time::Instant;

const MAX_INPUT: u64 = 8;

/// Runs the E12 prefix uninterrupted and returns `(search, seconds)`.
fn straight_run(budget: u64) -> (StreamingSearch, f64) {
    let start = Instant::now();
    let mut search = StreamingSearch::new(4, e12_pipeline_config(MAX_INPUT));
    search.run_for(budget);
    (search, start.elapsed().as_secs_f64())
}

/// Replays the same budget split across sessions, each resumed from a
/// JSON-serialised checkpoint of the previous one; returns the final stats
/// and the largest checkpoint size seen.
fn killed_and_resumed(budget: u64, sessions: u64) -> (PipelineStats, Option<u64>, usize) {
    let burst = budget.div_ceil(sessions);
    let mut search = StreamingSearch::new(4, e12_pipeline_config(MAX_INPUT));
    let mut streamed = 0u64;
    let mut checkpoint_bytes = 0usize;
    while streamed < budget && !search.is_finished() {
        let chunk = burst.min(budget - streamed);
        streamed += search.run_for(chunk);
        // Kill: drop the search entirely, keep only the serialised bytes.
        let json = serde_json::to_string(&search.checkpoint()).expect("checkpoint serialises");
        checkpoint_bytes = checkpoint_bytes.max(json.len());
        let checkpoint: SearchCheckpoint =
            serde_json::from_str(&json).expect("checkpoint deserialises");
        search = StreamingSearch::from_checkpoint(&checkpoint);
    }
    let best = search.result().best_eta;
    (search.stats(), best, checkpoint_bytes)
}

/// Runs the segmented E12 at `workers` until the merged prefix holds
/// `budget` orbits; returns `(report, seconds, pool stats)` — the pool
/// counters (helping-wait jobs, per-worker task counts and idle time) feed
/// the `parallel_scaling` rows of `BENCH_bb.json`.
fn segmented_run(
    budget: u64,
    workers: usize,
    order: SegmentOrder,
) -> (E12SegmentedReport, f64, popproto_exec::PoolStats) {
    let start = Instant::now();
    let pool = popproto_exec::Pool::new(workers);
    let mut search = e12_segmented_search(MAX_INPUT, order);
    search.run_on(&pool, budget);
    let seconds = start.elapsed().as_secs_f64();
    (
        e12_segmented_report_from(&search, budget, workers),
        seconds,
        pool.stats(),
    )
}

/// Renders pool counters as the `"pool"` object of a scaling row.
fn pool_json(stats: &popproto_exec::PoolStats) -> String {
    let tasks: Vec<String> = stats.per_worker_tasks.iter().map(u64::to_string).collect();
    let idle_ms: Vec<String> = stats
        .per_worker_idle_ns
        .iter()
        .map(|&ns| format!("{:.1}", ns as f64 / 1e6))
        .collect();
    format!(
        "{{\"workers\": {}, \"helped\": {}, \"worker_tasks\": [{}], \"worker_idle_ms\": [{}]}}",
        stats.workers,
        stats.helped,
        tasks.join(", "),
        idle_ms.join(", ")
    )
}

/// Asserts the segmented prefix reproduces the sequential stream bit for bit
/// on the same orbit count: funnel counters, best η, witness set.
fn assert_segmented_matches_sequential(report: &E12SegmentedReport) {
    let mut reference = StreamingSearch::new(4, e12_pipeline_config(MAX_INPUT));
    reference.run_for(report.prefix_orbits);
    let ref_stats = reference.stats();
    assert_eq!(
        report.stats.canonical_orbits, ref_stats.canonical_orbits,
        "orbit counts diverged"
    );
    assert_eq!(
        report.stats.pruned_symbolic, ref_stats.pruned_symbolic,
        "symbolic funnel diverged"
    );
    assert_eq!(
        report.stats.pruned_eta_bounded, ref_stats.pruned_eta_bounded,
        "eta-floor funnel diverged"
    );
    assert_eq!(
        report.stats.profiled, ref_stats.profiled,
        "profiled diverged"
    );
    assert_eq!(
        report.stats.threshold_protocols, ref_stats.threshold_protocols,
        "confirmed diverged"
    );
    assert_eq!(
        report.stats.truncated_orbits, ref_stats.truncated_orbits,
        "truncation diverged"
    );
    assert_eq!(
        report.best_eta,
        reference.result().best_eta,
        "best eta diverged"
    );
    let ref_confirmed: Vec<u128> = reference.confirmed().to_vec();
    let seg_confirmed: Vec<u128> = report.confirmed.iter().map(|c| c.get()).collect();
    assert_eq!(seg_confirmed, ref_confirmed, "witness sets diverged");
}

/// Kills a segmented run mid-budget at `workers_a`, resumes it at
/// `workers_b` through a JSON multi-cursor checkpoint, and asserts the
/// completed run equals an uninterrupted single-worker run.
fn assert_segmented_kill_resume(budget: u64, workers_a: usize, workers_b: usize) {
    let mut straight = e12_segmented_search(MAX_INPUT, SegmentOrder::Index);
    straight.run(1, budget);
    let expected = straight.result();

    let mut search = e12_segmented_search(MAX_INPUT, SegmentOrder::Index);
    search.run(workers_a, budget / 2);
    let json = serde_json::to_string(&search.checkpoint()).expect("checkpoint serialises");
    let checkpoint: SegmentedCheckpoint =
        serde_json::from_str(&json).expect("checkpoint deserialises");
    let mut resumed = SegmentedSearch::from_checkpoint(&checkpoint);
    resumed.run(workers_b, budget);
    let result = resumed.result();
    assert_eq!(result.prefix_orbits, expected.prefix_orbits);
    assert_eq!(result.best, expected.best, "kill/resume best diverged");
    assert_eq!(
        result.confirmed, expected.confirmed,
        "kill/resume witness set diverged"
    );
    let mut a = result.stats.clone();
    let mut b = expected.stats.clone();
    // Identical segmentation ⟹ identical local hits; only cross may differ.
    assert_eq!(a.memo_hits, b.memo_hits, "local memo hits diverged");
    a.memo_hits_cross = 0;
    b.memo_hits_cross = 0;
    assert_eq!(a, b, "kill/resume stats diverged");
}

/// Measures the fingerprint-canonicalization hit-rate delta on a sequential
/// prefix: `(hit_rate_with, hit_rate_without, entries_with, entries_without)`.
fn canonicalization_delta(budget: u64) -> (f64, f64, u64, u64) {
    let run = |canonical: bool| {
        let mut config = e12_pipeline_config(MAX_INPUT);
        config.canonical_fingerprints = canonical;
        let mut search = StreamingSearch::new(4, config);
        search.run_for(budget);
        let stats = search.stats();
        (
            stats.memo_hits as f64 / stats.canonical_orbits.max(1) as f64,
            search.memo_len() as u64,
        )
    };
    let (with_rate, with_entries) = run(true);
    let (without_rate, without_entries) = run(false);
    assert!(
        with_rate >= without_rate,
        "canonicalization must never lose hits ({with_rate} < {without_rate})"
    );
    assert!(with_entries <= without_entries);
    (with_rate, without_rate, with_entries, without_entries)
}

fn emit_bench_json(_c: &mut Criterion) {
    let full = std::env::var_os("BENCH_BB_FULL").is_some();
    let budget: u64 = if full { 1_000_000 } else { 20_000 };
    let smoke_workers: usize = std::env::var("BENCH_BB_WORKERS")
        .ok()
        .and_then(|w| w.parse().ok())
        .unwrap_or(2);
    let sessions = 3u64;

    // 1. The streamed prefix, uninterrupted (the PR 4 sequential baseline).
    let (search, seconds) = straight_run(budget);
    let report = e12_report_from(&search, budget);
    assert_eq!(report.stats.canonical_orbits, budget, "budget not honoured");
    assert_eq!(
        report.stats.pruned_symbolic + report.stats.pruned_eta_bounded + report.stats.profiled,
        report.stats.canonical_orbits,
        "the funnel must account for every canonical orbit"
    );
    assert_eq!(
        report.stats.truncated_orbits, 0,
        "no 4-state prefix slice may hit the exploration cap"
    );
    println!(
        "[E12] BB_det(4) prefix: {budget} canonical orbits in {seconds:.2}s \
         ({:.0} orbits/s), funnel: {} symbolic / {} eta-floor / {} profiled / {} confirmed, \
         {} memo hits over {} entries, best eta so far {:?}",
        budget as f64 / seconds,
        report.stats.pruned_symbolic,
        report.stats.pruned_eta_bounded,
        report.stats.profiled,
        report.stats.threshold_protocols,
        report.stats.memo_hits,
        report.memo_entries,
        report.best_eta,
    );

    // 2. Kill/resume through serialised checkpoints: bit-identical stats.
    let (resumed_stats, resumed_best, checkpoint_bytes) = killed_and_resumed(budget, sessions);
    assert_eq!(
        resumed_stats, report.stats,
        "kill/resume must reproduce the per-stage stats bit for bit"
    );
    assert_eq!(resumed_best, report.best_eta);
    println!(
        "[E12] kill/resume across {sessions} sessions: stats identical, \
         largest checkpoint {:.1} MB",
        checkpoint_bytes as f64 / 1e6
    );

    // 3. Parallel segmented streaming: the scaling matrix (full) or the CI
    // matrix worker count (smoke), each gated on funnel bit-identity
    // against the sequential stream.
    let scaling_workers: Vec<usize> = if full {
        vec![1, 2, 4, 8]
    } else {
        vec![smoke_workers]
    };
    let mut scaling_rows = Vec::new();
    for &workers in &scaling_workers {
        let (seg_report, seg_seconds, pool_stats) =
            segmented_run(budget, workers, SegmentOrder::Index);
        assert!(seg_report.prefix_orbits >= budget);
        assert_segmented_matches_sequential(&seg_report);
        let throughput = seg_report.prefix_orbits as f64 / seg_seconds;
        println!(
            "[E12] segmented @ {workers} workers: {} orbits in {seg_seconds:.2}s \
             ({throughput:.0} orbits/s, {} segments, {} local + {} cross memo hits, \
             {} pool tasks + {} helped) — funnel bit-identical to the sequential stream",
            seg_report.prefix_orbits,
            seg_report.segments_merged,
            seg_report.stats.memo_hits,
            seg_report.stats.memo_hits_cross,
            pool_stats.total_tasks(),
            pool_stats.helped,
        );
        scaling_rows.push(format!(
            "      {{\"workers\": {workers}, \"seconds\": {seg_seconds:.3}, \
             \"orbits_per_second\": {throughput:.0}, \"segments_merged\": {}, \
             \"memo_hits_local\": {}, \"memo_hits_cross\": {}, \
             \"speedup_vs_sequential\": {:.2}, \"identical_funnel\": true, \
             \"pool\": {}}}",
            seg_report.segments_merged,
            seg_report.stats.memo_hits,
            seg_report.stats.memo_hits_cross,
            seconds / seg_seconds,
            pool_json(&pool_stats),
        ));
    }

    // 4. Multi-cursor kill/resume across differing worker counts.
    let (resume_a, resume_b) = (smoke_workers.max(2), 3usize);
    assert_segmented_kill_resume(budget.min(40_000), resume_a, resume_b);
    println!(
        "[E12] segmented kill/resume: killed @ {resume_a} workers, resumed @ {resume_b} — \
         stats, best and witness set bit-identical"
    );

    // 4b. Checkpoint encoding: the v2 delta-packed memo tables against the
    // v1 raw record arrays, measured on a real mid-run checkpoint (the
    // kill/resume assert above already proves the packed bytes resume
    // bit-identically).
    let mut enc_search = e12_segmented_search(MAX_INPUT, SegmentOrder::Index);
    enc_search.run(smoke_workers, budget / 2);
    let enc_checkpoint = enc_search.checkpoint();
    let bytes_packed = serde_json::to_string(&enc_checkpoint)
        .expect("checkpoint serialises")
        .len();
    let mut memo_entries_total = 0u64;
    let mut packed_fields = 0usize;
    let mut legacy_fields = 0usize;
    let mut field_delta = |packed: &popproto::candidate_pipeline::PackedMemo| {
        let records = packed.unpack().expect("packed memo decodes");
        memo_entries_total += packed.entries;
        packed_fields += serde_json::to_string(packed).unwrap().len();
        legacy_fields += serde_json::to_string(&records).unwrap().len();
    };
    field_delta(&enc_checkpoint.shared_memo);
    for entry in &enc_checkpoint.segments {
        field_delta(&entry.local_memo);
    }
    let bytes_legacy = bytes_packed - packed_fields + legacy_fields;
    println!(
        "[E12] checkpoint encoding: {memo_entries_total} memo entries, \
         {:.2} MB as v1 raw records -> {:.2} MB delta-packed ({:.1}x smaller)",
        bytes_legacy as f64 / 1e6,
        bytes_packed as f64 / 1e6,
        bytes_legacy as f64 / bytes_packed as f64,
    );
    let encoding_json = format!(
        "  \"checkpoint_encoding\": {{\n    \"version\": 2,\n    \"orbit_budget\": {},\n    \"memo_entries\": {memo_entries_total},\n    \"bytes_v1_raw_records\": {bytes_legacy},\n    \"bytes_v2_packed\": {bytes_packed},\n    \"shrink_factor\": {:.2},\n    \"resume_bit_identical\": true\n  }}",
        budget / 2,
        bytes_legacy as f64 / bytes_packed as f64,
    );

    // 5. Fingerprint canonicalization: the hit-rate delta.
    let canon_budget = budget.min(100_000);
    let (with_rate, without_rate, with_entries, without_entries) =
        canonicalization_delta(canon_budget);
    println!(
        "[E12] fingerprint canonicalization over {canon_budget} orbits: hit rate \
         {:.1}% -> {:.1}%, memo entries {} -> {}",
        without_rate * 100.0,
        with_rate * 100.0,
        without_entries,
        with_entries,
    );

    // 6. Entropy-guided order: what the same budget surfaces when segments
    // are visited by descending function-index entropy.
    let entropy_budget = if full { 50_000 } else { 2_000 };
    let (entropy_report, entropy_seconds, _) = segmented_run(
        entropy_budget,
        smoke_workers,
        SegmentOrder::EntropyDescending,
    );
    println!(
        "[E12] entropy order @ {entropy_budget} orbits in {entropy_seconds:.2}s: \
         {} profiled / {} confirmed (index order at the same budget profiles the \
         degenerate corner instead)",
        entropy_report.stats.profiled, entropy_report.stats.threshold_protocols,
    );

    // 7. BB_det(3) through the new pipeline against the PR 3 reference
    // (regenerating the JSON implies re-proving the bit-identity).
    let mut bb3_entry = String::new();
    if full {
        let limits = ExploreLimits::default();
        let start = Instant::now();
        let bb3 = busy_beaver_search(3, 6, u64::MAX, &limits);
        let bb3_seconds = start.elapsed().as_secs_f64();
        assert_eq!(bb3.best_eta, Some(3), "BB_det(3) changed");
        assert_eq!(
            bb3.threshold_protocols, 46_144,
            "threshold_protocols changed"
        );
        assert_eq!(bb3.pruned_symmetric, 186_336, "pruned_symmetric changed");
        assert!(
            bb3.is_exact(),
            "BB_det(3) must be exact (no truncated orbit)"
        );
        const PR3_SECONDS: f64 = 0.91;
        println!(
            "[E12] BB_det(3) gate: best_eta=3, threshold_protocols=46144 reproduced in \
             {bb3_seconds:.2}s ({:.2}x the PR 3 reference {PR3_SECONDS}s)",
            bb3_seconds / PR3_SECONDS
        );
        bb3_entry = format!(
            ",\n  \"bb3_reference\": {{\n    \"best_eta\": 3,\n    \"threshold_protocols\": 46144,\n    \"pruned_symmetric\": 186336,\n    \"pruned_symbolic\": {},\n    \"memo_hits\": {},\n    \"seconds\": {bb3_seconds:.4},\n    \"pr3_seconds\": {PR3_SECONDS},\n    \"ratio_vs_pr3\": {:.3},\n    \"exact\": {}\n  }}",
            bb3.pruned_symbolic,
            bb3.memo_hits,
            bb3_seconds / PR3_SECONDS,
            bb3.is_exact()
        );
    }

    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let stats_json = serde_json::to_string(&report.stats).expect("stats serialise");
    let entropy_stats_json = serde_json::to_string(&entropy_report.stats).expect("stats serialise");
    let json = format!(
        "{{\n  \"e12_bb4_prefix\": {{\n    \"num_states\": 4,\n    \"orbit_budget\": {budget},\n    \"max_input\": {MAX_INPUT},\n    \"eta_floor\": {},\n    \"engine\": \"frontier\",\n    \"seconds\": {seconds:.3},\n    \"orbits_per_second\": {:.0},\n    \"stats\": {stats_json},\n    \"memo_entries\": {},\n    \"candidates_consumed\": {},\n    \"best_eta\": {},\n    \"finished\": {},\n    \"resume_check\": {{\n      \"sessions\": {sessions},\n      \"identical_stats\": true,\n      \"largest_checkpoint_bytes\": {checkpoint_bytes}\n    }}\n  }},\n  \"parallel_scaling\": {{\n    \"orbit_budget\": {budget},\n    \"segment_size\": {},\n    \"host_cpus\": {host_cpus},\n    \"pool_workers\": {},\n    \"time_sliced\": {},\n    \"order\": \"index\",\n    \"note\": \"funnel, best eta and witness set asserted bit-identical to the sequential stream at every worker count; resume asserted across differing worker counts; speedups are bounded by host_cpus — a single-core host time-slices the workers\",\n    \"runs\": [\n{}\n    ]\n  }},\n{encoding_json},\n  \"fingerprint_canonicalization\": {{\n    \"orbit_budget\": {canon_budget},\n    \"hit_rate_without\": {without_rate:.4},\n    \"hit_rate_with\": {with_rate:.4},\n    \"memo_entries_without\": {without_entries},\n    \"memo_entries_with\": {with_entries}\n  }},\n  \"entropy_order\": {{\n    \"orbit_budget\": {entropy_budget},\n    \"seconds\": {entropy_seconds:.3},\n    \"stats\": {entropy_stats_json},\n    \"best_eta\": {}\n  }}{bb3_entry}\n}}\n",
        report.eta_floor,
        budget as f64 / seconds,
        report.memo_entries,
        report.candidates_consumed,
        report
            .best_eta
            .map(|e| e.to_string())
            .unwrap_or_else(|| "null".into()),
        report.finished,
        entropy_report.segment_size,
        popproto_exec::default_workers(),
        host_cpus == 1,
        scaling_rows.join(",\n"),
        entropy_report
            .best_eta
            .map(|e| e.to_string())
            .unwrap_or_else(|| "null".into()),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_bb.json");
    if full {
        std::fs::write(path, &json).expect("failed to write BENCH_bb.json");
        println!("[E12] wrote {path}");
    } else {
        println!(
            "[E12] smoke run complete @ {smoke_workers} workers (set BENCH_BB_FULL=1 to \
             stream 10^6 orbits and regenerate {path})"
        );
    }
}

criterion_group!(benches, emit_bench_json);
criterion_main!(benches);
