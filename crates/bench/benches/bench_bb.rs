//! Busy-beaver pipeline benchmark: the streaming, staged, resumable
//! `BB_det(4)` prefix search (experiment E12) and the `BB_det(3)` soundness
//! gate, emitting `BENCH_bb.json`.
//!
//! Two modes:
//!
//! * **smoke** (default, what CI runs on every push): a small-budget E12
//!   prefix plus the kill/resume exercise — the run is split into sessions
//!   through *serialised* checkpoints and the per-stage stats must come out
//!   bit-identical to the uninterrupted run.  The committed
//!   `BENCH_bb.json` is left untouched.
//! * **full** (`BENCH_BB_FULL=1`): streams 10⁶ canonical 4-state orbits
//!   end-to-end, repeats the kill/resume check at that scale, re-runs
//!   `BB_det(3)` through the new pipeline against the PR 3 reference values
//!   (`best_eta = 3`, `threshold_protocols = 46144`,
//!   `pruned_symmetric = 186336`) as a bit-identity gate, and regenerates
//!   `BENCH_bb.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use popproto::candidate_pipeline::{PipelineStats, SearchCheckpoint, StreamingSearch};
use popproto::enumeration::busy_beaver_search;
use popproto::experiments::{e12_pipeline_config, e12_report_from};
use popproto_reach::ExploreLimits;
use std::time::Instant;

const MAX_INPUT: u64 = 8;

/// Runs the E12 prefix uninterrupted and returns `(search, seconds)`.
fn straight_run(budget: u64) -> (StreamingSearch, f64) {
    let start = Instant::now();
    let mut search = StreamingSearch::new(4, e12_pipeline_config(MAX_INPUT));
    search.run_for(budget);
    (search, start.elapsed().as_secs_f64())
}

/// Replays the same budget split across sessions, each resumed from a
/// JSON-serialised checkpoint of the previous one; returns the final stats
/// and the largest checkpoint size seen.
fn killed_and_resumed(budget: u64, sessions: u64) -> (PipelineStats, Option<u64>, usize) {
    let burst = budget.div_ceil(sessions);
    let mut search = StreamingSearch::new(4, e12_pipeline_config(MAX_INPUT));
    let mut streamed = 0u64;
    let mut checkpoint_bytes = 0usize;
    while streamed < budget && !search.is_finished() {
        let chunk = burst.min(budget - streamed);
        streamed += search.run_for(chunk);
        // Kill: drop the search entirely, keep only the serialised bytes.
        let json = serde_json::to_string(&search.checkpoint()).expect("checkpoint serialises");
        checkpoint_bytes = checkpoint_bytes.max(json.len());
        let checkpoint: SearchCheckpoint =
            serde_json::from_str(&json).expect("checkpoint deserialises");
        search = StreamingSearch::from_checkpoint(&checkpoint);
    }
    let best = search.result().best_eta;
    (search.stats(), best, checkpoint_bytes)
}

fn emit_bench_json(_c: &mut Criterion) {
    let full = std::env::var_os("BENCH_BB_FULL").is_some();
    let budget: u64 = if full { 1_000_000 } else { 20_000 };
    let sessions = 3u64;

    // 1. The streamed prefix, uninterrupted.
    let (search, seconds) = straight_run(budget);
    let report = e12_report_from(&search, budget);
    assert_eq!(report.stats.canonical_orbits, budget, "budget not honoured");
    assert_eq!(
        report.stats.pruned_symbolic + report.stats.pruned_eta_bounded + report.stats.profiled,
        report.stats.canonical_orbits,
        "the funnel must account for every canonical orbit"
    );
    assert_eq!(
        report.stats.truncated_orbits, 0,
        "no 4-state prefix slice may hit the exploration cap"
    );
    println!(
        "[E12] BB_det(4) prefix: {budget} canonical orbits in {seconds:.2}s \
         ({:.0} orbits/s), funnel: {} symbolic / {} eta-floor / {} profiled / {} confirmed, \
         {} memo hits over {} entries, best eta so far {:?}",
        budget as f64 / seconds,
        report.stats.pruned_symbolic,
        report.stats.pruned_eta_bounded,
        report.stats.profiled,
        report.stats.threshold_protocols,
        report.stats.memo_hits,
        report.memo_entries,
        report.best_eta,
    );

    // 2. Kill/resume through serialised checkpoints: bit-identical stats.
    let (resumed_stats, resumed_best, checkpoint_bytes) = killed_and_resumed(budget, sessions);
    assert_eq!(
        resumed_stats, report.stats,
        "kill/resume must reproduce the per-stage stats bit for bit"
    );
    assert_eq!(resumed_best, report.best_eta);
    println!(
        "[E12] kill/resume across {sessions} sessions: stats identical, \
         largest checkpoint {:.1} MB",
        checkpoint_bytes as f64 / 1e6
    );

    // 3. BB_det(3) through the new pipeline against the PR 3 reference
    // (regenerating the JSON implies re-proving the bit-identity).
    let mut bb3_entry = String::new();
    if full {
        let limits = ExploreLimits::default();
        let start = Instant::now();
        let bb3 = busy_beaver_search(3, 6, u64::MAX, &limits);
        let bb3_seconds = start.elapsed().as_secs_f64();
        assert_eq!(bb3.best_eta, Some(3), "BB_det(3) changed");
        assert_eq!(
            bb3.threshold_protocols, 46_144,
            "threshold_protocols changed"
        );
        assert_eq!(bb3.pruned_symmetric, 186_336, "pruned_symmetric changed");
        assert!(
            bb3.is_exact(),
            "BB_det(3) must be exact (no truncated orbit)"
        );
        const PR3_SECONDS: f64 = 0.91;
        println!(
            "[E12] BB_det(3) gate: best_eta=3, threshold_protocols=46144 reproduced in \
             {bb3_seconds:.2}s ({:.2}x the PR 3 reference {PR3_SECONDS}s)",
            bb3_seconds / PR3_SECONDS
        );
        bb3_entry = format!(
            ",\n  \"bb3_reference\": {{\n    \"best_eta\": 3,\n    \"threshold_protocols\": 46144,\n    \"pruned_symmetric\": 186336,\n    \"pruned_symbolic\": {},\n    \"memo_hits\": {},\n    \"seconds\": {bb3_seconds:.4},\n    \"pr3_seconds\": {PR3_SECONDS},\n    \"ratio_vs_pr3\": {:.3},\n    \"exact\": {}\n  }}",
            bb3.pruned_symbolic,
            bb3.memo_hits,
            bb3_seconds / PR3_SECONDS,
            bb3.is_exact()
        );
    }

    let stats_json = serde_json::to_string(&report.stats).expect("stats serialise");
    let json = format!(
        "{{\n  \"e12_bb4_prefix\": {{\n    \"num_states\": 4,\n    \"orbit_budget\": {budget},\n    \"max_input\": {MAX_INPUT},\n    \"eta_floor\": {},\n    \"engine\": \"frontier\",\n    \"seconds\": {seconds:.3},\n    \"orbits_per_second\": {:.0},\n    \"stats\": {stats_json},\n    \"memo_entries\": {},\n    \"candidates_consumed\": {},\n    \"best_eta\": {},\n    \"finished\": {},\n    \"resume_check\": {{\n      \"sessions\": {sessions},\n      \"identical_stats\": true,\n      \"largest_checkpoint_bytes\": {checkpoint_bytes}\n    }}\n  }}{bb3_entry}\n}}\n",
        report.eta_floor,
        budget as f64 / seconds,
        report.memo_entries,
        report.candidates_consumed,
        report
            .best_eta
            .map(|e| e.to_string())
            .unwrap_or_else(|| "null".into()),
        report.finished,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_bb.json");
    if full {
        std::fs::write(path, &json).expect("failed to write BENCH_bb.json");
        println!("[E12] wrote {path}");
    } else {
        println!(
            "[E12] smoke run complete (set BENCH_BB_FULL=1 to stream 10^6 orbits and \
             regenerate {path})"
        );
    }
}

criterion_group!(benches, emit_bench_json);
criterion_main!(benches);
