//! E7 — exact busy-beaver values for tiny state counts by exhaustive
//! enumeration of deterministic leaderless protocols.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use popproto::enumeration::busy_beaver_search;
use popproto_reach::ExploreLimits;
use std::time::Duration;

fn bench_e7(c: &mut Criterion) {
    // Print the exact values for n = 1, 2 (the artefact EXPERIMENTS.md records).
    for n in 1..=2usize {
        let result = busy_beaver_search(n, 6, 1_000_000, &ExploreLimits::default());
        println!(
            "[E7] BB_det({n}) = {:?} ({} protocols examined, {} compute a threshold)",
            result.best_eta, result.protocols_examined, result.threshold_protocols
        );
    }

    let mut group = c.benchmark_group("e7_busy_beaver_search");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [1usize, 2] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| busy_beaver_search(n, 6, 1_000_000, &ExploreLimits::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e7);
criterion_main!(benches);
