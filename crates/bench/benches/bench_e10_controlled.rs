//! E10 — lengths of controlled bad sequences (Lemma 4.4) in small dimension,
//! the combinatorial engine behind the Theorem 4.5 bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use popproto::experiments::experiment_e10;
use popproto_vas::{longest_bad_sequence, ControlledSearch};
use std::time::Duration;

fn bench_e10(c: &mut Criterion) {
    let rows = experiment_e10(2, 3, 2_000_000);
    println!("\n[E10] controlled bad sequence lengths");
    println!("| dimension | δ | length | exact |");
    println!("|---|---|---|---|");
    for r in &rows {
        println!(
            "| {} | {} | {} | {} |",
            r.dimension, r.delta, r.length, r.exact
        );
    }

    let mut group = c.benchmark_group("e10_longest_bad_sequence");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for (dim, delta) in [(1usize, 4u64), (2, 1), (2, 2)] {
        let id = format!("d{dim}_delta{delta}");
        group.bench_with_input(
            BenchmarkId::from_parameter(id),
            &(dim, delta),
            |b, &(dim, delta)| b.iter(|| longest_bad_sequence(&ControlledSearch::new(dim, delta))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_e10);
criterion_main!(benches);
