//! E9 — ablation of the Pottier constant (Remark 1): the general constant
//! `ξ = 2(2|T|+1)^|Q|` versus the deterministic-protocol constant
//! `2(|Q|+2)^|Q|`, across the zoo.

use criterion::{criterion_group, criterion_main, Criterion};
use popproto_numerics::BigNat;
use popproto_vas::{pottier_constant, pottier_constant_deterministic};
use popproto_zoo::catalog;
use std::time::Duration;

fn bench_e9(c: &mut Criterion) {
    println!("\n[E9] Pottier constant ablation (general vs deterministic, Remark 1)");
    println!("| protocol | |Q| | |T| | deterministic? | ξ | ξ_det |");
    println!("|---|---|---|---|---|---|");
    for instance in catalog() {
        let p = &instance.protocol;
        let xi = pottier_constant(p);
        let xi_det = pottier_constant_deterministic(p);
        println!(
            "| {} | {} | {} | {} | {} | {} |",
            p.name(),
            p.num_states(),
            p.num_transitions(),
            p.is_deterministic(),
            shorten(&xi),
            shorten(&xi_det)
        );
    }

    let mut group = c.benchmark_group("e9_xi_constants");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1));
    group.bench_function("catalog_constants", |b| {
        b.iter(|| {
            catalog()
                .iter()
                .map(|i| pottier_constant(&i.protocol))
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

fn shorten(v: &BigNat) -> String {
    let s = v.to_decimal_string();
    if s.len() > 12 {
        format!("≈10^{}", s.len() - 1)
    } else {
        s
    }
}

criterion_group!(benches, bench_e9);
criterion_main!(benches);
