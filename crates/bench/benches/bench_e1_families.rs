//! E1 — busy beaver witness families: regenerate the states-vs-threshold
//! table (Theorem 2.2 / Example 2.1) and benchmark the exhaustive
//! verification behind it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use popproto::experiments::experiment_e1;
use popproto::report::render_e1;
use popproto_reach::{verify_unary_threshold, ExploreLimits};
use popproto_zoo::binary_counter;
use std::time::Duration;

fn bench_e1(c: &mut Criterion) {
    // Print the experiment table once (this is the artefact EXPERIMENTS.md records).
    let report = experiment_e1(6, 6, 3, 16);
    println!(
        "\n[E1] busy beaver witness families\n{}",
        render_e1(&report.records)
    );

    let mut group = c.benchmark_group("e1_verify_binary_counter");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for k in [1u32, 2, 3] {
        let p = binary_counter(k);
        let eta = 1u64 << k;
        group.bench_with_input(BenchmarkId::from_parameter(k), &p, |b, p| {
            b.iter(|| verify_unary_threshold(p, eta, eta + 3, &ExploreLimits::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e1);
criterion_main!(benches);
