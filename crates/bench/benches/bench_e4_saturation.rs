//! E4 — reaching 1-saturated configurations (Lemmas 5.3/5.4): regenerate the
//! empirical-input-vs-3^n table and benchmark the saturation search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use popproto::experiments::experiment_e4;
use popproto::report::render_e4;
use popproto_reach::{min_input_for_saturation, ExploreLimits};
use popproto_zoo::{binary_counter, flock};
use std::time::Duration;

fn bench_e4(c: &mut Criterion) {
    let rows = experiment_e4(
        &[flock(3), flock(5), binary_counter(2), binary_counter(3)],
        40,
    );
    println!("\n[E4] saturation vs 3^n\n{}", render_e4(&rows));

    let mut group = c.benchmark_group("e4_min_input_for_saturation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for k in [2u32, 3] {
        let p = binary_counter(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &p, |b, p| {
            b.iter(|| min_input_for_saturation(p, 1, 40, &ExploreLimits::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e4);
criterion_main!(benches);
