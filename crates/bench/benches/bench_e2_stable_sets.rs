//! E2 — stable sets and their small bases (Lemma 3.1/3.2): regenerate the
//! empirical-norm-vs-β table and benchmark the stable-set extraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use popproto::experiments::experiment_e2;
use popproto::report::render_e2;
use popproto_model::Output;
use popproto_reach::{extract_stable_basis, ExploreLimits};
use popproto_zoo::{binary_counter, flock};
use std::time::Duration;

fn bench_e2(c: &mut Criterion) {
    let rows = experiment_e2(&[flock(3), binary_counter(2)], 6);
    println!("\n[E2] stable-set bases vs β\n{}", render_e2(&rows));

    let mut group = c.benchmark_group("e2_extract_stable_basis");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for size in [4u64, 6, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let p = binary_counter(2);
            b.iter(|| extract_stable_basis(&p, Output::True, size, 2, &ExploreLimits::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e2);
criterion_main!(benches);
