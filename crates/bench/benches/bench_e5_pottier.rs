//! E5 — Hilbert bases of potentially realisable multisets vs Pottier's bound
//! (Corollary 5.7): regenerate the norm table and benchmark the
//! Contejean–Devie computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use popproto::experiments::experiment_e5;
use popproto::report::render_e5;
use popproto_vas::{HilbertOptions, RealisabilitySystem};
use popproto_zoo::{binary_counter, flock};
use std::time::Duration;

fn bench_e5(c: &mut Criterion) {
    let rows = experiment_e5(&[flock(3), flock(4), binary_counter(2), binary_counter(3)]);
    println!("\n[E5] Pottier bases\n{}", render_e5(&rows));

    let mut group = c.benchmark_group("e5_hilbert_basis");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for (name, p) in [
        ("flock3", flock(3)),
        ("counter2", binary_counter(2)),
        ("counter3", binary_counter(3)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &p, |b, p| {
            b.iter(|| RealisabilitySystem::new(p).basis(&HilbertOptions::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e5);
criterion_main!(benches);
