//! Exhaustive forward exploration of the configuration space of a fixed
//! population size, on top of the interning [`ConfigArena`].
//!
//! The exploration never materialises a [`Config`] per node: successor
//! generation applies transition deltas to a scratch slice and interns the
//! result directly, and the adjacency structure is stored in compressed
//! sparse row (CSR) form — two flat `u32` arrays per direction instead of a
//! `Vec<Vec<usize>>` per node.  Closures over the graph are bitset fixpoints
//! (see [`BitSet`]).

use crate::arena::ConfigArena;
use crate::bitset::BitSet;
use popproto_model::{Config, Protocol};
use serde::{Deserialize, Serialize};

/// Limits for the exhaustive exploration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExploreLimits {
    /// Maximum number of distinct configurations to explore.
    pub max_configs: usize,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        // The arena stores a configuration in `4·|Q|` bytes (the seed's
        // `HashMap<Config, usize>` needed an order of magnitude more), so the
        // default cap affords 1M configurations where the seed stopped at
        // 200k: slices that previously exhausted the limits now complete.
        ExploreLimits {
            max_configs: 1_000_000,
        }
    }
}

impl ExploreLimits {
    /// Creates limits with the given configuration cap.
    pub fn with_max_configs(max_configs: usize) -> Self {
        ExploreLimits { max_configs }
    }

    /// The configuration cap the seed implementation shipped with.
    pub const SEED_DEFAULT_MAX_CONFIGS: usize = 200_000;
}

/// The reachability graph of a protocol restricted to the configurations
/// reachable from a set of initial configurations (all of the same size).
///
/// Node identifiers are dense `u32` values in BFS discovery order.
///
/// # Examples
///
/// ```
/// use popproto_model::{Output, ProtocolBuilder};
/// use popproto_reach::{ExploreLimits, ReachabilityGraph};
///
/// # fn main() -> Result<(), popproto_model::ProtocolError> {
/// let mut b = ProtocolBuilder::new("x >= 2");
/// let zero = b.add_state("0", Output::False);
/// let one = b.add_state("1", Output::False);
/// let two = b.add_state("2", Output::True);
/// b.add_transition((one, one), (zero, two))?;
/// b.add_transition((zero, two), (two, two))?;
/// b.add_transition((one, two), (two, two))?;
/// b.set_input_state("x", one);
/// let p = b.build()?;
///
/// let graph = ReachabilityGraph::explore(&p, &[p.initial_config_unary(3)], &ExploreLimits::default());
/// assert!(graph.is_complete());
/// assert_eq!(graph.len(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ReachabilityGraph {
    arena: ConfigArena,
    succ_off: Vec<u32>,
    succ: Vec<u32>,
    pred_off: Vec<u32>,
    pred: Vec<u32>,
    initial: Vec<u32>,
    complete: bool,
}

/// The non-silent transitions of a protocol as raw state-index deltas
/// `(pre0, pre1, post0, post1)`, in transition order.
///
/// Shared by the CSR and the frontier-compressed explorers: their
/// bit-identity contract depends on both applying the *same* delta list in
/// the same order.
pub(crate) fn transition_deltas(protocol: &Protocol) -> Vec<[usize; 4]> {
    protocol
        .transitions()
        .iter()
        .filter(|t| !t.is_silent())
        .map(|t| {
            [
                t.pre.lo().index(),
                t.pre.hi().index(),
                t.post.lo().index(),
                t.post.hi().index(),
            ]
        })
        .collect()
}

impl ReachabilityGraph {
    /// Explores the configuration space reachable from `initial` under
    /// `protocol`, up to the given limits.
    pub fn explore(protocol: &Protocol, initial: &[Config], limits: &ExploreLimits) -> Self {
        let n = protocol.num_states();
        let mut arena = ConfigArena::new(n);
        let mut initial_ids: Vec<u32> = Vec::new();
        for c in initial {
            let (id, _) = arena.intern_config(c);
            if !initial_ids.contains(&id) {
                initial_ids.push(id);
            }
        }

        let deltas = transition_deltas(protocol);

        let mut succ_off: Vec<u32> = vec![0];
        let mut succ: Vec<u32> = Vec::new();
        let mut current: Vec<u32> = vec![0; n];
        let mut scratch: Vec<u32> = vec![0; n];
        let mut complete = true;

        // Identifiers are assigned in discovery order, so the BFS queue is
        // implicit: process ids `0, 1, 2, …` until the frontier is exhausted.
        let mut head: usize = 0;
        while head < arena.len() {
            if arena.len() > limits.max_configs {
                complete = false;
                break;
            }
            let id = head as u32;
            head += 1;
            current.copy_from_slice(arena.counts_of(id));
            let base = succ.len();
            for &[p0, p1, q0, q1] in &deltas {
                let enabled = if p0 == p1 {
                    current[p0] >= 2
                } else {
                    current[p0] >= 1 && current[p1] >= 1
                };
                if !enabled {
                    continue;
                }
                // A non-silent transition always changes the configuration,
                // so the successor is a genuine move (never a self-loop).
                scratch.copy_from_slice(&current);
                scratch[p0] -= 1;
                scratch[p1] -= 1;
                scratch[q0] += 1;
                scratch[q1] += 1;
                let (next_id, _) = arena.intern(&scratch);
                if !succ[base..].contains(&next_id) {
                    succ.push(next_id);
                }
            }
            succ_off.push(succ.len() as u32);
        }
        // Nodes discovered but not expanded (truncated exploration) have no
        // outgoing edges.
        succ_off.resize(arena.len() + 1, succ.len() as u32);

        // Transpose into the predecessor CSR.
        let num = arena.len();
        let mut pred_off = vec![0u32; num + 1];
        for &dst in &succ {
            pred_off[dst as usize + 1] += 1;
        }
        for i in 1..pred_off.len() {
            pred_off[i] += pred_off[i - 1];
        }
        let mut pred = vec![0u32; succ.len()];
        let mut cursor: Vec<u32> = pred_off[..num].to_vec();
        for src in 0..num {
            let (lo, hi) = (succ_off[src] as usize, succ_off[src + 1] as usize);
            for &dst in &succ[lo..hi] {
                pred[cursor[dst as usize] as usize] = src as u32;
                cursor[dst as usize] += 1;
            }
        }

        ReachabilityGraph {
            arena,
            succ_off,
            succ,
            pred_off,
            pred,
            initial: initial_ids,
            complete,
        }
    }

    /// Number of configurations explored.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Returns `true` if no configuration was explored.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// Returns `true` if the exploration terminated without hitting limits.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// The underlying configuration arena.
    pub fn arena(&self) -> &ConfigArena {
        &self.arena
    }

    /// Iterates over all node identifiers.
    pub fn ids(&self) -> impl Iterator<Item = u32> + '_ {
        0..self.len() as u32
    }

    /// The raw count slice of the configuration with identifier `id`.
    pub fn counts_of(&self, id: u32) -> &[u32] {
        self.arena.counts_of(id)
    }

    /// The configuration with identifier `id`, materialised.
    pub fn config(&self, id: u32) -> Config {
        self.arena.config(id)
    }

    /// All explored configurations, materialised (reporting only — hot paths
    /// should iterate [`ReachabilityGraph::counts_of`] instead).
    pub fn configs(&self) -> Vec<Config> {
        self.ids().map(|id| self.config(id)).collect()
    }

    /// The internal identifier of a configuration, if it was explored.
    pub fn id_of(&self, c: &Config) -> Option<u32> {
        self.arena.lookup_config(c)
    }

    /// Identifiers of the initial configurations.
    pub fn initial_ids(&self) -> &[u32] {
        &self.initial
    }

    /// Successor identifiers of a configuration.
    pub fn successors_of(&self, id: u32) -> &[u32] {
        let (lo, hi) = (
            self.succ_off[id as usize] as usize,
            self.succ_off[id as usize + 1] as usize,
        );
        &self.succ[lo..hi]
    }

    /// Predecessor identifiers of a configuration.
    pub fn predecessors_of(&self, id: u32) -> &[u32] {
        let (lo, hi) = (
            self.pred_off[id as usize] as usize,
            self.pred_off[id as usize + 1] as usize,
        );
        &self.pred[lo..hi]
    }

    /// Total number of (directed, deduplicated) edges.
    pub fn num_edges(&self) -> usize {
        self.succ.len()
    }

    /// Approximate heap usage of the graph: the arena plus both CSR
    /// directions.  The comparison baseline for the frontier-compressed
    /// explorer, which stores no adjacency at all.
    pub fn heap_bytes(&self) -> usize {
        self.arena.heap_bytes()
            + (self.succ_off.capacity()
                + self.succ.capacity()
                + self.pred_off.capacity()
                + self.pred.capacity())
                * std::mem::size_of::<u32>()
    }

    /// Identifiers of terminal (silent) configurations: no outgoing edge.
    pub fn terminal_ids(&self) -> Vec<u32> {
        self.ids()
            .filter(|&id| self.successors_of(id).is_empty())
            .collect()
    }

    /// The set of identifiers forward-reachable from `start` (including it).
    pub fn forward_closure(&self, start: &[u32]) -> BitSet {
        self.closure(start.iter().copied(), false)
    }

    /// The set of identifiers backward-reachable from `targets` (including
    /// them): configurations that *can reach* a target.
    pub fn backward_closure(&self, targets: &[u32]) -> BitSet {
        self.closure(targets.iter().copied(), true)
    }

    /// Backward closure seeded by a bitset instead of an id list.
    pub fn backward_closure_of(&self, targets: &BitSet) -> BitSet {
        self.closure(targets.iter(), true)
    }

    fn closure(&self, seeds: impl Iterator<Item = u32>, backward: bool) -> BitSet {
        let mut seen = BitSet::new(self.len());
        let mut stack: Vec<u32> = Vec::new();
        for s in seeds {
            if seen.insert(s) {
                stack.push(s);
            }
        }
        while let Some(id) = stack.pop() {
            let edges = if backward {
                self.predecessors_of(id)
            } else {
                self.successors_of(id)
            };
            for &next in edges {
                if seen.insert(next) {
                    stack.push(next);
                }
            }
        }
        seen
    }

    /// A shortest path (sequence of configuration identifiers) from some
    /// identifier in `start` to some identifier satisfying `goal`, if one exists.
    pub fn shortest_path_to(&self, start: &[u32], goal: impl Fn(u32) -> bool) -> Option<Vec<u32>> {
        use std::collections::VecDeque;
        let mut prev = vec![u32::MAX; self.len()];
        let mut seen = BitSet::new(self.len());
        let mut queue = VecDeque::new();
        for &s in start {
            if seen.insert(s) {
                queue.push_back(s);
            }
        }
        while let Some(id) = queue.pop_front() {
            if goal(id) {
                let mut path = vec![id];
                let mut cur = id;
                while prev[cur as usize] != u32::MAX {
                    cur = prev[cur as usize];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            for &next in self.successors_of(id) {
                if seen.insert(next) {
                    prev[next as usize] = id;
                    queue.push_back(next);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popproto_model::{Output, ProtocolBuilder, StateId};

    fn threshold2_protocol() -> Protocol {
        let mut b = ProtocolBuilder::new("x >= 2");
        let zero = b.add_state("0", Output::False);
        let one = b.add_state("1", Output::False);
        let two = b.add_state("2", Output::True);
        b.add_transition((one, one), (zero, two)).unwrap();
        b.add_transition((zero, two), (two, two)).unwrap();
        b.add_transition((one, two), (two, two)).unwrap();
        b.set_input_state("x", one);
        b.build().unwrap()
    }

    #[test]
    fn explores_small_space_completely() {
        let p = threshold2_protocol();
        let g =
            ReachabilityGraph::explore(&p, &[p.initial_config_unary(3)], &ExploreLimits::default());
        assert!(g.is_complete());
        // Reachable configurations from ⟨3·q1⟩:
        // ⟨3·1⟩, ⟨1·0,1·1,1·2⟩, ⟨1·1,2·2⟩, ⟨3·2⟩  (and ⟨1·0, 2·2⟩? let's check: from
        // ⟨1·0,1·1,1·2⟩ we can fire (0,2↦2,2) giving ⟨1·1,2·2⟩ or (1,2↦2,2) giving ⟨1·0,2·2⟩).
        assert_eq!(g.len(), 5);
        assert_eq!(g.initial_ids().len(), 1);
        // Every explored configuration has the same population size.
        for c in g.configs() {
            assert_eq!(c.size(), 3);
        }
        // The raw slices agree with the materialised configurations.
        for id in g.ids() {
            let counts: Vec<u64> = g.counts_of(id).iter().map(|&c| c as u64).collect();
            assert_eq!(g.config(id).counts(), counts.as_slice());
        }
    }

    #[test]
    fn terminal_configurations_are_silent() {
        let p = threshold2_protocol();
        let g =
            ReachabilityGraph::explore(&p, &[p.initial_config_unary(3)], &ExploreLimits::default());
        let terminals = g.terminal_ids();
        assert_eq!(terminals.len(), 1);
        let t = g.config(terminals[0]);
        assert_eq!(t.get(StateId::new(2)), 3);
        assert!(p.is_silent_config(&t));
    }

    #[test]
    fn forward_and_backward_closures() {
        let p = threshold2_protocol();
        let g =
            ReachabilityGraph::explore(&p, &[p.initial_config_unary(3)], &ExploreLimits::default());
        let fwd = g.forward_closure(g.initial_ids());
        assert_eq!(
            fwd.count(),
            g.len(),
            "everything is forward-reachable from the initial config"
        );
        let terminal = g.terminal_ids();
        let bwd = g.backward_closure(&terminal);
        assert_eq!(
            bwd.count(),
            g.len(),
            "every configuration can reach the terminal one"
        );
        // Seeding by bitset agrees with seeding by id list.
        let mut seed = BitSet::new(g.len());
        for &t in &terminal {
            seed.insert(t);
        }
        assert_eq!(g.backward_closure_of(&seed), bwd);
    }

    #[test]
    fn shortest_paths() {
        let p = threshold2_protocol();
        let g =
            ReachabilityGraph::explore(&p, &[p.initial_config_unary(3)], &ExploreLimits::default());
        let terminal = g.terminal_ids()[0];
        let path = g
            .shortest_path_to(g.initial_ids(), |id| id == terminal)
            .unwrap();
        assert_eq!(path.first(), Some(&g.initial_ids()[0]));
        assert_eq!(path.last(), Some(&terminal));
        // From ⟨3·q1⟩ the fastest stabilisation takes 3 interactions.
        assert_eq!(path.len(), 4);
        // A goal that never holds yields no path.
        assert!(g.shortest_path_to(g.initial_ids(), |_| false).is_none());
    }

    #[test]
    fn limit_truncates_exploration() {
        let p = threshold2_protocol();
        let g = ReachabilityGraph::explore(
            &p,
            &[p.initial_config_unary(30)],
            &ExploreLimits::with_max_configs(3),
        );
        assert!(!g.is_complete());
        assert!(g.len() <= 5);
        // Unexpanded frontier nodes have well-defined (empty) adjacency.
        for id in g.ids() {
            let _ = g.successors_of(id);
            let _ = g.predecessors_of(id);
        }
    }

    #[test]
    fn id_lookup_roundtrip() {
        let p = threshold2_protocol();
        let ic = p.initial_config_unary(2);
        let g =
            ReachabilityGraph::explore(&p, std::slice::from_ref(&ic), &ExploreLimits::default());
        let id = g.id_of(&ic).unwrap();
        assert_eq!(g.config(id), ic);
        assert!(g.id_of(&Config::from_counts(vec![9, 9, 9])).is_none());
    }

    #[test]
    fn multiple_initial_configurations() {
        let p = threshold2_protocol();
        let g = ReachabilityGraph::explore(
            &p,
            &[p.initial_config_unary(2), p.initial_config_unary(2)],
            &ExploreLimits::default(),
        );
        // Duplicate initial configurations are collapsed.
        assert_eq!(g.initial_ids().len(), 1);
    }

    #[test]
    fn csr_edges_are_deduplicated_and_transposed() {
        let p = threshold2_protocol();
        let g =
            ReachabilityGraph::explore(&p, &[p.initial_config_unary(4)], &ExploreLimits::default());
        let mut forward = 0;
        for id in g.ids() {
            let succ = g.successors_of(id);
            let mut sorted = succ.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), succ.len(), "duplicate successor edge");
            forward += succ.len();
            for &s in succ {
                assert!(
                    g.predecessors_of(s).contains(&id),
                    "missing transposed edge {id} -> {s}"
                );
            }
        }
        assert_eq!(forward, g.num_edges());
        let backward: usize = g.ids().map(|id| g.predecessors_of(id).len()).sum();
        assert_eq!(forward, backward);
    }
}
