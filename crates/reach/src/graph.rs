//! Exhaustive forward exploration of the configuration space of a fixed
//! population size.

use popproto_model::{Config, Protocol};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Limits for the exhaustive exploration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExploreLimits {
    /// Maximum number of distinct configurations to explore.
    pub max_configs: usize,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits {
            max_configs: 200_000,
        }
    }
}

impl ExploreLimits {
    /// Creates limits with the given configuration cap.
    pub fn with_max_configs(max_configs: usize) -> Self {
        ExploreLimits { max_configs }
    }
}

/// The reachability graph of a protocol restricted to the configurations
/// reachable from a set of initial configurations (all of the same size).
///
/// # Examples
///
/// ```
/// use popproto_model::{Output, ProtocolBuilder};
/// use popproto_reach::{ExploreLimits, ReachabilityGraph};
///
/// # fn main() -> Result<(), popproto_model::ProtocolError> {
/// let mut b = ProtocolBuilder::new("x >= 2");
/// let zero = b.add_state("0", Output::False);
/// let one = b.add_state("1", Output::False);
/// let two = b.add_state("2", Output::True);
/// b.add_transition((one, one), (zero, two))?;
/// b.add_transition((zero, two), (two, two))?;
/// b.add_transition((one, two), (two, two))?;
/// b.set_input_state("x", one);
/// let p = b.build()?;
///
/// let graph = ReachabilityGraph::explore(&p, &[p.initial_config_unary(3)], &ExploreLimits::default());
/// assert!(graph.is_complete());
/// assert_eq!(graph.len(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ReachabilityGraph {
    configs: Vec<Config>,
    index: HashMap<Config, usize>,
    successors: Vec<Vec<usize>>,
    predecessors: Vec<Vec<usize>>,
    initial: Vec<usize>,
    complete: bool,
}

impl ReachabilityGraph {
    /// Explores the configuration space reachable from `initial` under
    /// `protocol`, up to the given limits.
    pub fn explore(protocol: &Protocol, initial: &[Config], limits: &ExploreLimits) -> Self {
        let mut graph = ReachabilityGraph {
            configs: Vec::new(),
            index: HashMap::new(),
            successors: Vec::new(),
            predecessors: Vec::new(),
            initial: Vec::new(),
            complete: true,
        };
        let mut queue: Vec<usize> = Vec::new();
        for c in initial {
            let id = graph.intern(c.clone());
            if !graph.initial.contains(&id) {
                graph.initial.push(id);
            }
            queue.push(id);
        }
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            if graph.configs.len() > limits.max_configs {
                graph.complete = false;
                break;
            }
            let current = graph.configs[id].clone();
            for next in protocol.successors(&current) {
                let known = graph.index.contains_key(&next);
                let next_id = graph.intern(next);
                if !graph.successors[id].contains(&next_id) {
                    graph.successors[id].push(next_id);
                    graph.predecessors[next_id].push(id);
                }
                if !known {
                    queue.push(next_id);
                }
            }
        }
        graph
    }

    fn intern(&mut self, c: Config) -> usize {
        if let Some(&id) = self.index.get(&c) {
            return id;
        }
        let id = self.configs.len();
        self.index.insert(c.clone(), id);
        self.configs.push(c);
        self.successors.push(Vec::new());
        self.predecessors.push(Vec::new());
        id
    }

    /// Number of configurations explored.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Returns `true` if no configuration was explored.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Returns `true` if the exploration terminated without hitting limits.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// The configuration with internal identifier `id`.
    pub fn config(&self, id: usize) -> &Config {
        &self.configs[id]
    }

    /// All explored configurations.
    pub fn configs(&self) -> &[Config] {
        &self.configs
    }

    /// The internal identifier of a configuration, if it was explored.
    pub fn id_of(&self, c: &Config) -> Option<usize> {
        self.index.get(c).copied()
    }

    /// Identifiers of the initial configurations.
    pub fn initial_ids(&self) -> &[usize] {
        &self.initial
    }

    /// Successor identifiers of a configuration.
    pub fn successors_of(&self, id: usize) -> &[usize] {
        &self.successors[id]
    }

    /// Predecessor identifiers of a configuration.
    pub fn predecessors_of(&self, id: usize) -> &[usize] {
        &self.predecessors[id]
    }

    /// Identifiers of terminal (silent) configurations: no outgoing edge.
    pub fn terminal_ids(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.successors[i].is_empty())
            .collect()
    }

    /// The set of identifiers forward-reachable from `start` (including it).
    pub fn forward_closure(&self, start: &[usize]) -> Vec<bool> {
        self.closure(start, &self.successors)
    }

    /// The set of identifiers backward-reachable from `targets` (including
    /// them): configurations that *can reach* a target.
    pub fn backward_closure(&self, targets: &[usize]) -> Vec<bool> {
        self.closure(targets, &self.predecessors)
    }

    fn closure(&self, seeds: &[usize], edges: &[Vec<usize>]) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut stack: Vec<usize> = seeds.to_vec();
        for &s in seeds {
            seen[s] = true;
        }
        while let Some(id) = stack.pop() {
            for &next in &edges[id] {
                if !seen[next] {
                    seen[next] = true;
                    stack.push(next);
                }
            }
        }
        seen
    }

    /// A shortest path (sequence of configuration identifiers) from some
    /// identifier in `start` to some identifier satisfying `goal`, if one exists.
    pub fn shortest_path_to(
        &self,
        start: &[usize],
        goal: impl Fn(usize) -> bool,
    ) -> Option<Vec<usize>> {
        use std::collections::VecDeque;
        let mut prev = vec![usize::MAX; self.len()];
        let mut seen = vec![false; self.len()];
        let mut queue = VecDeque::new();
        for &s in start {
            seen[s] = true;
            queue.push_back(s);
        }
        while let Some(id) = queue.pop_front() {
            if goal(id) {
                let mut path = vec![id];
                let mut cur = id;
                while prev[cur] != usize::MAX {
                    cur = prev[cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            for &next in &self.successors[id] {
                if !seen[next] {
                    seen[next] = true;
                    prev[next] = id;
                    queue.push_back(next);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popproto_model::{Output, ProtocolBuilder, StateId};

    fn threshold2_protocol() -> Protocol {
        let mut b = ProtocolBuilder::new("x >= 2");
        let zero = b.add_state("0", Output::False);
        let one = b.add_state("1", Output::False);
        let two = b.add_state("2", Output::True);
        b.add_transition((one, one), (zero, two)).unwrap();
        b.add_transition((zero, two), (two, two)).unwrap();
        b.add_transition((one, two), (two, two)).unwrap();
        b.set_input_state("x", one);
        b.build().unwrap()
    }

    #[test]
    fn explores_small_space_completely() {
        let p = threshold2_protocol();
        let g = ReachabilityGraph::explore(&p, &[p.initial_config_unary(3)], &ExploreLimits::default());
        assert!(g.is_complete());
        // Reachable configurations from ⟨3·q1⟩:
        // ⟨3·1⟩, ⟨1·0,1·1,1·2⟩, ⟨1·1,2·2⟩, ⟨3·2⟩  (and ⟨1·0, 2·2⟩? let's check: from
        // ⟨1·0,1·1,1·2⟩ we can fire (0,2↦2,2) giving ⟨1·1,2·2⟩ or (1,2↦2,2) giving ⟨1·0,2·2⟩).
        assert_eq!(g.len(), 5);
        assert_eq!(g.initial_ids().len(), 1);
        // Every explored configuration has the same population size.
        for c in g.configs() {
            assert_eq!(c.size(), 3);
        }
    }

    #[test]
    fn terminal_configurations_are_silent() {
        let p = threshold2_protocol();
        let g = ReachabilityGraph::explore(&p, &[p.initial_config_unary(3)], &ExploreLimits::default());
        let terminals = g.terminal_ids();
        assert_eq!(terminals.len(), 1);
        let t = g.config(terminals[0]);
        assert_eq!(t.get(StateId::new(2)), 3);
        assert!(p.is_silent_config(t));
    }

    #[test]
    fn forward_and_backward_closures() {
        let p = threshold2_protocol();
        let g = ReachabilityGraph::explore(&p, &[p.initial_config_unary(3)], &ExploreLimits::default());
        let fwd = g.forward_closure(g.initial_ids());
        assert!(fwd.iter().all(|&b| b), "everything is forward-reachable from the initial config");
        let terminal = g.terminal_ids();
        let bwd = g.backward_closure(&terminal);
        assert!(bwd.iter().all(|&b| b), "every configuration can reach the terminal one");
    }

    #[test]
    fn shortest_paths() {
        let p = threshold2_protocol();
        let g = ReachabilityGraph::explore(&p, &[p.initial_config_unary(3)], &ExploreLimits::default());
        let terminal = g.terminal_ids()[0];
        let path = g
            .shortest_path_to(g.initial_ids(), |id| id == terminal)
            .unwrap();
        assert_eq!(path.first(), Some(&g.initial_ids()[0]));
        assert_eq!(path.last(), Some(&terminal));
        // From ⟨3·q1⟩ the fastest stabilisation takes 3 interactions.
        assert_eq!(path.len(), 4);
        // A goal that never holds yields no path.
        assert!(g.shortest_path_to(g.initial_ids(), |_| false).is_none());
    }

    #[test]
    fn limit_truncates_exploration() {
        let p = threshold2_protocol();
        let g = ReachabilityGraph::explore(
            &p,
            &[p.initial_config_unary(30)],
            &ExploreLimits::with_max_configs(3),
        );
        assert!(!g.is_complete());
        assert!(g.len() <= 5);
    }

    #[test]
    fn id_lookup_roundtrip() {
        let p = threshold2_protocol();
        let ic = p.initial_config_unary(2);
        let g = ReachabilityGraph::explore(&p, std::slice::from_ref(&ic), &ExploreLimits::default());
        let id = g.id_of(&ic).unwrap();
        assert_eq!(g.config(id), &ic);
        assert!(g.id_of(&Config::from_counts(vec![9, 9, 9])).is_none());
    }

    #[test]
    fn multiple_initial_configurations() {
        let p = threshold2_protocol();
        let g = ReachabilityGraph::explore(
            &p,
            &[p.initial_config_unary(2), p.initial_config_unary(2)],
            &ExploreLimits::default(),
        );
        // Duplicate initial configurations are collapsed.
        assert_eq!(g.initial_ids().len(), 1);
    }
}
