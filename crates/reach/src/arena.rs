//! A compact interning arena for configurations of a fixed state count.
//!
//! Exhaustive exploration visits hundreds of thousands of configurations; the
//! seed implementation stored each as an owned [`Config`] *twice* (once in a
//! `Vec`, once as a `HashMap` key), paying an allocation and a full clone per
//! node.  [`ConfigArena`] instead keeps every configuration as a flat `u32`
//! count slice inside one backing buffer and deduplicates through an
//! open-addressed hash table that hashes the raw slices directly — interning
//! a known configuration allocates nothing.
//!
//! Identifiers are dense `u32` indices in insertion order, so the exploration
//! layers above can use them directly as CSR node ids and bitset positions.

use popproto_model::Config;

/// Interns configurations (count vectors over a fixed state set) as dense
/// `u32` identifiers backed by a single flat buffer.
///
/// Counts are stored as `u32`: exact exploration only ever handles bounded
/// slices whose populations are far below `u32::MAX` (inserting a larger
/// count panics rather than truncating).
///
/// # Examples
///
/// ```
/// use popproto_reach::ConfigArena;
///
/// let mut arena = ConfigArena::new(3);
/// let (a, fresh_a) = arena.intern(&[2, 0, 1]);
/// let (b, fresh_b) = arena.intern(&[2, 0, 1]);
/// assert_eq!(a, b);
/// assert!(fresh_a && !fresh_b);
/// assert_eq!(arena.counts_of(a), &[2, 0, 1]);
/// assert_eq!(arena.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ConfigArena {
    num_states: usize,
    /// Backing buffer: configuration `id` occupies
    /// `counts[id * num_states .. (id + 1) * num_states]`.
    counts: Vec<u32>,
    /// Open-addressed table of `id + 1` entries (`0` marks an empty slot).
    table: Vec<u32>,
    mask: usize,
    len: usize,
}

const INITIAL_TABLE: usize = 64;

impl ConfigArena {
    /// Creates an empty arena over `num_states` states.
    pub fn new(num_states: usize) -> Self {
        ConfigArena {
            num_states,
            counts: Vec::new(),
            table: vec![0; INITIAL_TABLE],
            mask: INITIAL_TABLE - 1,
            len: 0,
        }
    }

    /// Creates an empty arena with room for roughly `capacity` configurations
    /// before the first rehash.
    pub fn with_capacity(num_states: usize, capacity: usize) -> Self {
        let table = (capacity * 4 / 3 + 1)
            .next_power_of_two()
            .max(INITIAL_TABLE);
        ConfigArena {
            num_states,
            counts: Vec::with_capacity(capacity * num_states),
            table: vec![0; table],
            mask: table - 1,
            len: 0,
        }
    }

    /// The dimension (number of states) of the interned configurations.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of distinct configurations interned.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no configuration has been interned.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The raw count slice of configuration `id`.
    pub fn counts_of(&self, id: u32) -> &[u32] {
        let start = id as usize * self.num_states;
        &self.counts[start..start + self.num_states]
    }

    /// Materialises configuration `id` as an owned [`Config`].
    pub fn config(&self, id: u32) -> Config {
        Config::from_counts(self.counts_of(id).iter().map(|&c| c as u64).collect())
    }

    /// Iterates over all interned configurations as `(id, counts)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[u32])> + '_ {
        (0..self.len() as u32).map(move |id| (id, self.counts_of(id)))
    }

    fn hash_slice(slice: &[u32]) -> u64 {
        // FNV-1a over the count words: short slices, no allocation, good
        // enough dispersion for a power-of-two table with linear probing.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &c in slice {
            h ^= c as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// The identifier of `slice`, if it has been interned.
    pub fn lookup(&self, slice: &[u32]) -> Option<u32> {
        debug_assert_eq!(slice.len(), self.num_states);
        let mut idx = Self::hash_slice(slice) as usize & self.mask;
        loop {
            match self.table[idx] {
                0 => return None,
                entry => {
                    let id = entry - 1;
                    if self.counts_of(id) == slice {
                        return Some(id);
                    }
                }
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// The identifier of a [`Config`], if it has been interned.
    ///
    /// Returns `None` for configurations of the wrong dimension or with
    /// counts beyond `u32::MAX` (which can never have been interned).
    pub fn lookup_config(&self, c: &Config) -> Option<u32> {
        if c.num_states() != self.num_states {
            return None;
        }
        let mut scratch = Vec::with_capacity(self.num_states);
        for &v in c.counts() {
            scratch.push(u32::try_from(v).ok()?);
        }
        self.lookup(&scratch)
    }

    /// Interns `slice`, returning its identifier and whether it was new.
    ///
    /// # Panics
    ///
    /// Panics if `slice` has the wrong dimension.
    pub fn intern(&mut self, slice: &[u32]) -> (u32, bool) {
        assert_eq!(slice.len(), self.num_states, "dimension mismatch");
        let mut idx = Self::hash_slice(slice) as usize & self.mask;
        loop {
            match self.table[idx] {
                0 => break,
                entry => {
                    let id = entry - 1;
                    if self.counts_of(id) == slice {
                        return (id, false);
                    }
                }
            }
            idx = (idx + 1) & self.mask;
        }
        let id = self.len as u32;
        self.counts.extend_from_slice(slice);
        self.table[idx] = id + 1;
        self.len += 1;
        if (self.len + 1) * 4 >= self.table.len() * 3 {
            self.grow();
        }
        (id, true)
    }

    /// Interns a [`Config`], converting its counts to `u32`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or counts beyond `u32::MAX`.
    pub fn intern_config(&mut self, c: &Config) -> (u32, bool) {
        let scratch: Vec<u32> = c
            .counts()
            .iter()
            .map(|&v| u32::try_from(v).expect("count exceeds the arena's u32 range"))
            .collect();
        self.intern(&scratch)
    }

    fn grow(&mut self) {
        let new_size = self.table.len() * 2;
        self.table.clear();
        self.table.resize(new_size, 0);
        self.mask = new_size - 1;
        for id in 0..self.len() as u32 {
            let mut idx = Self::hash_slice(self.counts_of(id)) as usize & self.mask;
            while self.table[idx] != 0 {
                idx = (idx + 1) & self.mask;
            }
            self.table[idx] = id + 1;
        }
    }

    /// Approximate heap usage in bytes (backing buffer plus hash table).
    pub fn heap_bytes(&self) -> usize {
        self.counts.capacity() * std::mem::size_of::<u32>()
            + self.table.capacity() * std::mem::size_of::<u32>()
    }

    /// Bytes *occupied* by interned data: the live count rows plus the live
    /// hash-table slots, ignoring over-allocated capacity.
    ///
    /// `bytes_used() ≤ heap_bytes()`; after [`ConfigArena::shrink_to_fit`]
    /// the two coincide.
    pub fn bytes_used(&self) -> usize {
        self.counts.len() * std::mem::size_of::<u32>()
            + self.table.len() * std::mem::size_of::<u32>()
    }

    /// Releases over-allocated capacity: shrinks the backing count buffer to
    /// its length and rebuilds the hash table at the smallest power-of-two
    /// size that keeps the load factor below 3/4.
    ///
    /// Identifiers and lookups are unaffected.  Useful once an exploration
    /// has finished growing and the arena is kept around read-only (e.g. for
    /// the backward fixpoints of a frontier-compressed verification).
    pub fn shrink_to_fit(&mut self) {
        self.counts.shrink_to_fit();
        let minimal = ((self.len + 1) * 4 / 3 + 1)
            .next_power_of_two()
            .max(INITIAL_TABLE);
        if minimal < self.table.len() {
            self.table.clear();
            self.table.resize(minimal, 0);
            self.table.shrink_to_fit();
            self.mask = minimal - 1;
            for id in 0..self.len() as u32 {
                let mut idx = Self::hash_slice(self.counts_of(id)) as usize & self.mask;
                while self.table[idx] != 0 {
                    idx = (idx + 1) & self.mask;
                }
                self.table[idx] = id + 1;
            }
        } else {
            self.table.shrink_to_fit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_deduplicates_and_preserves_ids() {
        let mut arena = ConfigArena::new(3);
        let (a, new_a) = arena.intern(&[1, 2, 3]);
        let (b, new_b) = arena.intern(&[3, 2, 1]);
        let (a2, new_a2) = arena.intern(&[1, 2, 3]);
        assert!(new_a && new_b && !new_a2);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.counts_of(a), &[1, 2, 3]);
        assert_eq!(arena.counts_of(b), &[3, 2, 1]);
    }

    #[test]
    fn lookup_roundtrip() {
        let mut arena = ConfigArena::new(2);
        assert_eq!(arena.lookup(&[5, 5]), None);
        let (id, _) = arena.intern(&[5, 5]);
        assert_eq!(arena.lookup(&[5, 5]), Some(id));
        let c = Config::from_counts(vec![5, 5]);
        assert_eq!(arena.lookup_config(&c), Some(id));
        assert_eq!(
            arena.lookup_config(&Config::from_counts(vec![5, 5, 0])),
            None
        );
        assert_eq!(arena.config(id), c);
    }

    #[test]
    fn survives_many_inserts_and_rehashes() {
        let mut arena = ConfigArena::new(4);
        let mut ids = Vec::new();
        for i in 0..10_000u32 {
            let slice = [i % 97, i / 97, i % 13, i];
            let (id, fresh) = arena.intern(&slice);
            assert!(fresh);
            ids.push((id, slice));
        }
        assert_eq!(arena.len(), 10_000);
        for (id, slice) in &ids {
            assert_eq!(arena.lookup(slice), Some(*id));
            assert_eq!(arena.counts_of(*id), slice);
        }
    }

    #[test]
    fn iter_yields_in_insertion_order() {
        let mut arena = ConfigArena::new(2);
        arena.intern(&[0, 1]);
        arena.intern(&[1, 0]);
        let collected: Vec<(u32, Vec<u32>)> =
            arena.iter().map(|(id, s)| (id, s.to_vec())).collect();
        assert_eq!(collected, vec![(0, vec![0, 1]), (1, vec![1, 0])]);
    }

    #[test]
    fn shrink_to_fit_preserves_ids_and_lookups() {
        let mut arena = ConfigArena::with_capacity(3, 50_000);
        let mut slices = Vec::new();
        for i in 0..1_000u32 {
            let slice = [i, i % 7, i % 3];
            arena.intern(&slice);
            slices.push(slice);
        }
        let before = arena.heap_bytes();
        assert!(arena.bytes_used() < before, "capacity was over-allocated");
        arena.shrink_to_fit();
        assert!(arena.heap_bytes() < before);
        assert_eq!(arena.heap_bytes(), arena.bytes_used());
        assert_eq!(arena.len(), 1_000);
        for (id, slice) in slices.iter().enumerate() {
            assert_eq!(arena.lookup(slice), Some(id as u32));
            assert_eq!(arena.counts_of(id as u32), slice);
        }
        // Interning still works after the rebuild.
        let (id, fresh) = arena.intern(&[9_999, 0, 0]);
        assert!(fresh);
        assert_eq!(id, 1_000);
    }

    #[test]
    fn with_capacity_avoids_immediate_growth() {
        let mut arena = ConfigArena::with_capacity(1, 1000);
        let table_before = arena.table.len();
        for i in 0..1000u32 {
            arena.intern(&[i]);
        }
        assert_eq!(arena.table.len(), table_before);
        assert!(arena.heap_bytes() > 0);
    }
}
