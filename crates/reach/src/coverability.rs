//! Coverability of individual states.
//!
//! The proofs of Lemma 3.2 and Lemma 5.3 reason about whether some reachable
//! configuration *covers* a state `q` (populates it with at least one agent).
//! On a bounded slice this is an exhaustive forward search; the covered-state
//! set is accumulated in one pass over the arena's raw count slices.

use crate::graph::{ExploreLimits, ReachabilityGraph};
use popproto_model::{Config, Protocol, StateId};

/// The set of states covered by some configuration reachable from `from`.
pub fn coverable_states(
    protocol: &Protocol,
    from: &Config,
    limits: &ExploreLimits,
) -> Vec<StateId> {
    let graph = ReachabilityGraph::explore(protocol, std::slice::from_ref(from), limits);
    let mut covered = vec![false; protocol.num_states()];
    for id in graph.ids() {
        for (q, &count) in graph.counts_of(id).iter().enumerate() {
            if count > 0 {
                covered[q] = true;
            }
        }
    }
    covered
        .iter()
        .enumerate()
        .filter(|(_, &c)| c)
        .map(|(q, _)| StateId::new(q))
        .collect()
}

/// Returns `true` if some configuration reachable from `from` covers `q`.
///
/// Identifiers outside the protocol's state range are trivially uncoverable.
pub fn can_cover(protocol: &Protocol, from: &Config, q: StateId, limits: &ExploreLimits) -> bool {
    if q.index() >= protocol.num_states() {
        return false;
    }
    let graph = ReachabilityGraph::explore(protocol, std::slice::from_ref(from), limits);
    let covered = graph.ids().any(|id| graph.counts_of(id)[q.index()] > 0);
    covered
}

/// The smallest unary input `i ≤ max_input` such that `IC(i)` can cover
/// state `q`, if any (the quantity `i_q` of Section 5.3).
pub fn min_input_covering_state(
    protocol: &Protocol,
    q: StateId,
    max_input: u64,
    limits: &ExploreLimits,
) -> Option<u64> {
    (1..=max_input).find(|&i| can_cover(protocol, &protocol.initial_config_unary(i), q, limits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use popproto_model::{Output, ProtocolBuilder};

    /// P'_2 : states {0, 1, 2, 4}, x ≥ 4 by doubling.
    fn binary_counter() -> Protocol {
        let mut b = ProtocolBuilder::new("x >= 4");
        let zero = b.add_state("0", Output::False);
        let one = b.add_state("1", Output::False);
        let two = b.add_state("2", Output::False);
        let four = b.add_state("4", Output::True);
        b.add_transition((one, one), (zero, two)).unwrap();
        b.add_transition((two, two), (zero, four)).unwrap();
        for &a in &[zero, one, two] {
            b.add_transition_idempotent((a, four), (four, four))
                .unwrap();
        }
        b.set_input_state("x", one);
        b.build().unwrap()
    }

    #[test]
    fn coverable_states_grow_with_input() {
        let p = binary_counter();
        let limits = ExploreLimits::default();
        let from_1 = coverable_states(&p, &p.initial_config_unary(1), &limits);
        assert_eq!(from_1, vec![StateId::new(1)]);
        let from_2 = coverable_states(&p, &p.initial_config_unary(2), &limits);
        assert_eq!(from_2.len(), 3); // 0, 1, 2
        let from_4 = coverable_states(&p, &p.initial_config_unary(4), &limits);
        assert_eq!(from_4.len(), 4); // all states
    }

    #[test]
    fn minimal_covering_inputs() {
        let p = binary_counter();
        let limits = ExploreLimits::default();
        // State "1" is covered by the input itself.
        assert_eq!(
            min_input_covering_state(&p, StateId::new(1), 10, &limits),
            Some(1)
        );
        // State "2" needs two agents.
        assert_eq!(
            min_input_covering_state(&p, StateId::new(2), 10, &limits),
            Some(2)
        );
        // State "4" needs four agents.
        assert_eq!(
            min_input_covering_state(&p, StateId::new(4), 10, &limits),
            None
        );
        assert_eq!(
            min_input_covering_state(&p, p.state_by_name("4").unwrap(), 10, &limits),
            Some(4)
        );
    }

    #[test]
    fn can_cover_is_monotone_in_input() {
        let p = binary_counter();
        let limits = ExploreLimits::default();
        let q4 = p.state_by_name("4").unwrap();
        assert!(!can_cover(&p, &p.initial_config_unary(3), q4, &limits));
        assert!(can_cover(&p, &p.initial_config_unary(4), q4, &limits));
        assert!(can_cover(&p, &p.initial_config_unary(7), q4, &limits));
    }
}
