//! Empirical extraction of small bases of stable sets (Lemma 3.2).
//!
//! Lemma 3.2 guarantees that `SC_b` has a basis of elements `(B, S)` with
//! norm at most `β = 2^(2(2n+1)!+1)`.  The constant is astronomically loose;
//! this module extracts *actual* basis elements from the stable
//! configurations computed on bounded slices, so experiment E2 can report the
//! empirically required norm.
//!
//! The extraction follows the recipe of the Lemma 3.2 proof: given a
//! b-stable configuration `C` and a threshold `θ`, let
//! `S = {q | C(q) > θ}` and truncate `C` to `θ` on `S`; the candidate
//! `(B, S)` is kept if `B` itself is b-stable (a necessary condition that is
//! also sufficient for the protocols and slices we explore, and which we
//! additionally spot-check on larger members of `B + N^S`).

use crate::graph::ExploreLimits;
use crate::stable::is_stable_config;
use popproto_model::{Config, Output, Protocol};
use popproto_vas::BasisElement;
use serde::{Deserialize, Serialize};

/// An empirically extracted basis of a stable set, with provenance data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmpiricalBasis {
    /// The output `b` of the stable set `SC_b` the basis was extracted for.
    pub output: Output,
    /// The truncation threshold used for the extraction.
    pub threshold: u64,
    /// The extracted basis elements.
    pub elements: Vec<BasisElement>,
    /// Stable configurations (from the explored slices) used as seeds.
    pub seed_count: usize,
    /// `true` if every retained element passed the stability spot-checks.
    pub verified: bool,
    /// Number of seeds whose thresholded candidate failed the spot-checks and
    /// was therefore demoted to an exact (ω-free) element.
    pub fallback_count: usize,
}

impl EmpiricalBasis {
    /// The maximal norm `‖B‖_∞` over the extracted elements.
    pub fn max_norm(&self) -> u64 {
        self.elements
            .iter()
            .map(BasisElement::norm)
            .max()
            .unwrap_or(0)
    }

    /// Returns `true` if every seed configuration is covered by some element.
    pub fn covers(&self, seeds: &[Config]) -> bool {
        seeds
            .iter()
            .all(|c| self.elements.iter().any(|e| e.contains(c)))
    }
}

/// Enumerates all b-stable configurations of the protocol with exactly
/// `size` agents.
pub fn stable_configs_of_size(
    protocol: &Protocol,
    b: Output,
    size: u64,
    limits: &ExploreLimits,
) -> Vec<Config> {
    let mut out = Vec::new();
    let mut current = Config::empty(protocol.num_states());
    enumerate(protocol, b, size, 0, &mut current, limits, &mut out);
    out
}

fn enumerate(
    protocol: &Protocol,
    b: Output,
    remaining: u64,
    state: usize,
    current: &mut Config,
    limits: &ExploreLimits,
    out: &mut Vec<Config>,
) {
    let n = protocol.num_states();
    if state == n {
        if remaining == 0 && is_stable_config(protocol, current, b, limits) == Some(true) {
            out.push(current.clone());
        }
        return;
    }
    if state == n - 1 {
        current.set(popproto_model::StateId::new(state), remaining);
        enumerate(protocol, b, 0, n, current, limits, out);
        current.set(popproto_model::StateId::new(state), 0);
        return;
    }
    for count in 0..=remaining {
        current.set(popproto_model::StateId::new(state), count);
        enumerate(
            protocol,
            b,
            remaining - count,
            state + 1,
            current,
            limits,
            out,
        );
        current.set(popproto_model::StateId::new(state), 0);
    }
}

/// Extracts an empirical basis of `SC_b` from all b-stable configurations of
/// size `max_size`, truncating at `threshold`.
pub fn extract_stable_basis(
    protocol: &Protocol,
    b: Output,
    max_size: u64,
    threshold: u64,
    limits: &ExploreLimits,
) -> EmpiricalBasis {
    let seeds = stable_configs_of_size(protocol, b, max_size, limits);
    let mut elements: Vec<BasisElement> = Vec::new();
    let mut verified = true;
    let mut fallback_count = 0;
    for seed in &seeds {
        let mut candidate = BasisElement::from_config_with_threshold(seed, threshold);
        // Spot-check the candidate: its base must be b-stable (Lemma 3.1 makes
        // this necessary) and pumping every ω-state by a few agents must stay
        // b-stable.  If either check fails, the threshold was too aggressive
        // for this seed: demote the candidate to the exact (ω-free) element,
        // which trivially passes because the seed itself is b-stable.
        let base_ok = is_stable_config(protocol, candidate.base(), b, limits) == Some(true);
        let mut pumped = candidate.base().clone();
        for q in candidate.omega_states() {
            pumped.add(q, 3);
        }
        let pump_ok = is_stable_config(protocol, &pumped, b, limits) == Some(true);
        if !(base_ok && pump_ok) {
            candidate =
                BasisElement::new(seed.clone(), std::iter::empty::<popproto_model::StateId>());
            fallback_count += 1;
            if is_stable_config(protocol, candidate.base(), b, limits) != Some(true) {
                verified = false;
            }
        }
        if !elements.contains(&candidate) {
            elements.push(candidate);
        }
    }
    EmpiricalBasis {
        output: b,
        threshold,
        elements,
        seed_count: seeds.len(),
        verified,
        fallback_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popproto_model::{Output, ProtocolBuilder};

    fn threshold2_protocol() -> Protocol {
        let mut b = ProtocolBuilder::new("x >= 2");
        let zero = b.add_state("0", Output::False);
        let one = b.add_state("1", Output::False);
        let two = b.add_state("2", Output::True);
        b.add_transition((one, one), (zero, two)).unwrap();
        b.add_transition((zero, two), (two, two)).unwrap();
        b.add_transition((one, two), (two, two)).unwrap();
        b.set_input_state("x", one);
        b.build().unwrap()
    }

    #[test]
    fn stable_configs_enumeration() {
        let p = threshold2_protocol();
        let limits = ExploreLimits::default();
        let ones = stable_configs_of_size(&p, Output::True, 4, &limits);
        // The only 1-stable configurations of size 4 are all agents in state 2.
        assert_eq!(ones.len(), 1);
        assert_eq!(ones[0].counts(), &[0, 0, 4]);
        let zeros = stable_configs_of_size(&p, Output::False, 4, &limits);
        // 0-stable configurations of size 4: all agents in state 0 or exactly
        // one agent in state 1 and the rest in state 0 (a single 1 can never grow).
        assert_eq!(zeros.len(), 2);
        for c in &zeros {
            assert!(c.get(popproto_model::StateId::new(2)) == 0);
            assert!(c.get(popproto_model::StateId::new(1)) <= 1);
        }
    }

    #[test]
    fn extracted_basis_covers_seeds_and_has_small_norm() {
        let p = threshold2_protocol();
        let limits = ExploreLimits::default();
        let basis = extract_stable_basis(&p, Output::True, 5, 1, &limits);
        assert!(basis.verified);
        assert_eq!(basis.seed_count, 1);
        assert_eq!(basis.elements.len(), 1);
        let seeds = stable_configs_of_size(&p, Output::True, 5, &limits);
        assert!(basis.covers(&seeds));
        // The empirical norm is 1 — vastly smaller than β = 2^(2·5!+1).
        assert_eq!(basis.max_norm(), 1);
    }

    #[test]
    fn zero_stable_basis_extraction() {
        let p = threshold2_protocol();
        let limits = ExploreLimits::default();
        let basis = extract_stable_basis(&p, Output::False, 5, 1, &limits);
        assert!(basis.verified);
        assert!(!basis.elements.is_empty());
        // Elements must only involve 0-output states in their ω-sets.
        for e in &basis.elements {
            for q in e.omega_states() {
                assert_eq!(p.output_of(q), Output::False);
            }
        }
    }
}
