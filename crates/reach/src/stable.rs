//! Stable configurations and the sets `SC_0`, `SC_1`, `SC` (Definition 2).
//!
//! A configuration `C` is *b-stable* if every configuration reachable from
//! `C` has output `b` (all agents populate states of output `b`).  On a fixed
//! population slice this is computable exactly: `C` is b-stable iff no
//! configuration containing an agent of output `≠ b` is reachable from `C`.

use crate::graph::{ExploreLimits, ReachabilityGraph};
use popproto_model::{Config, Output, Protocol};
use serde::{Deserialize, Serialize};

/// The b-stable configurations of a reachability graph, for both outputs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StableSets {
    /// `stable0[id]` is `true` iff configuration `id` is 0-stable.
    pub stable0: Vec<bool>,
    /// `stable1[id]` is `true` iff configuration `id` is 1-stable.
    pub stable1: Vec<bool>,
}

impl StableSets {
    /// Computes the stable sets of all configurations in the graph.
    pub fn compute(protocol: &Protocol, graph: &ReachabilityGraph) -> Self {
        StableSets {
            stable0: Self::compute_for(protocol, graph, Output::False),
            stable1: Self::compute_for(protocol, graph, Output::True),
        }
    }

    fn compute_for(protocol: &Protocol, graph: &ReachabilityGraph, b: Output) -> Vec<bool> {
        // "Bad" configurations contain an agent with the wrong output.
        let bad: Vec<usize> = (0..graph.len())
            .filter(|&id| {
                graph
                    .config(id)
                    .iter()
                    .any(|(q, _)| protocol.output_of(q) != b)
            })
            .collect();
        // A configuration is b-stable iff it cannot reach a bad configuration.
        let can_reach_bad = graph.backward_closure(&bad);
        can_reach_bad.iter().map(|&r| !r).collect()
    }

    /// Returns whether configuration `id` is b-stable.
    pub fn is_stable(&self, id: usize, b: Output) -> bool {
        match b {
            Output::False => self.stable0[id],
            Output::True => self.stable1[id],
        }
    }

    /// Identifiers of the b-stable configurations.
    pub fn stable_ids(&self, b: Output) -> Vec<usize> {
        let v = match b {
            Output::False => &self.stable0,
            Output::True => &self.stable1,
        };
        v.iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(id, _)| id)
            .collect()
    }

    /// Identifiers of the configurations in `SC = SC_0 ∪ SC_1`.
    pub fn all_stable_ids(&self) -> Vec<usize> {
        (0..self.stable0.len())
            .filter(|&id| self.stable0[id] || self.stable1[id])
            .collect()
    }

    /// Number of b-stable configurations.
    pub fn count(&self, b: Output) -> usize {
        self.stable_ids(b).len()
    }
}

/// Standalone b-stability check of a single configuration: explores forward
/// from `c` and reports whether every reachable configuration has output `b`.
///
/// Returns `None` if the exploration hits its limits before deciding.
pub fn is_stable_config(
    protocol: &Protocol,
    c: &Config,
    b: Output,
    limits: &ExploreLimits,
) -> Option<bool> {
    let graph = ReachabilityGraph::explore(protocol, std::slice::from_ref(c), limits);
    let offending = (0..graph.len()).find(|&id| {
        graph
            .config(id)
            .iter()
            .any(|(q, _)| protocol.output_of(q) != b)
    });
    match offending {
        Some(_) => Some(false),
        None if graph.is_complete() => Some(true),
        None => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popproto_model::{Output, ProtocolBuilder};

    fn threshold2_protocol() -> Protocol {
        let mut b = ProtocolBuilder::new("x >= 2");
        let zero = b.add_state("0", Output::False);
        let one = b.add_state("1", Output::False);
        let two = b.add_state("2", Output::True);
        b.add_transition((one, one), (zero, two)).unwrap();
        b.add_transition((zero, two), (two, two)).unwrap();
        b.add_transition((one, two), (two, two)).unwrap();
        b.set_input_state("x", one);
        b.build().unwrap()
    }

    #[test]
    fn stable_sets_of_threshold_protocol() {
        let p = threshold2_protocol();
        let g = ReachabilityGraph::explore(&p, &[p.initial_config_unary(3)], &ExploreLimits::default());
        let stable = StableSets::compute(&p, &g);
        // From ⟨3·q1⟩ every configuration can still reach ⟨3·q2⟩ (output 1),
        // so no reachable configuration is 0-stable...
        assert_eq!(stable.count(Output::False), 0);
        // ...and the only 1-stable configuration is ⟨3·q2⟩ itself.
        let ones = stable.stable_ids(Output::True);
        assert_eq!(ones.len(), 1);
        assert_eq!(g.config(ones[0]).counts(), &[0, 0, 3]);
        assert_eq!(stable.all_stable_ids(), ones);
        assert!(stable.is_stable(ones[0], Output::True));
        assert!(!stable.is_stable(ones[0], Output::False));
    }

    #[test]
    fn input_one_is_zero_stable() {
        let p = threshold2_protocol();
        // A single agent in state 1 can never change state: it is 0-stable.
        let g = ReachabilityGraph::explore(&p, &[p.initial_config_unary(1)], &ExploreLimits::default());
        let stable = StableSets::compute(&p, &g);
        assert_eq!(stable.count(Output::False), 1);
        assert_eq!(stable.count(Output::True), 0);
    }

    #[test]
    fn standalone_stability_check() {
        let p = threshold2_protocol();
        let all_two = Config::from_counts(vec![0, 0, 4]);
        assert_eq!(
            is_stable_config(&p, &all_two, Output::True, &ExploreLimits::default()),
            Some(true)
        );
        assert_eq!(
            is_stable_config(&p, &all_two, Output::False, &ExploreLimits::default()),
            Some(false)
        );
        // A mixed configuration is not 0-stable (it already contains a 1-output agent)
        // and not 1-stable either... actually ⟨1·q0, 1·q2⟩ can only move to ⟨2·q2⟩,
        // so it IS 1-stable? No: it contains q0 with output 0, but 1-stability asks
        // that every *reachable* configuration has output 1 — including itself.
        let mixed = Config::from_counts(vec![1, 0, 1]);
        assert_eq!(
            is_stable_config(&p, &mixed, Output::True, &ExploreLimits::default()),
            Some(false)
        );
    }

    #[test]
    fn downward_closedness_of_stable_sets_lemma_31() {
        // Lemma 3.1: SC_b is downward closed.  Check it empirically on the
        // slice of size ≤ 4: for every 1-stable C and every C' ≤ C, C' is 1-stable.
        let p = threshold2_protocol();
        let limits = ExploreLimits::default();
        let mut stable_configs: Vec<Config> = Vec::new();
        // Enumerate all configurations with at most 4 agents and record the stable ones.
        for a in 0..=4u64 {
            for b in 0..=(4 - a) {
                for c in 0..=(4 - a - b) {
                    let cfg = Config::from_counts(vec![a, b, c]);
                    if cfg.size() < 2 {
                        continue; // configurations have at least 2 agents
                    }
                    if is_stable_config(&p, &cfg, Output::True, &limits) == Some(true) {
                        stable_configs.push(cfg);
                    }
                }
            }
        }
        assert!(!stable_configs.is_empty());
        for c in &stable_configs {
            for a in 0..=c.counts()[0] {
                for b in 0..=c.counts()[1] {
                    for d in 0..=c.counts()[2] {
                        let smaller = Config::from_counts(vec![a, b, d]);
                        if smaller.size() < 2 {
                            continue;
                        }
                        assert_eq!(
                            is_stable_config(&p, &smaller, Output::True, &limits),
                            Some(true),
                            "downward closure violated at {smaller} ≤ {c}"
                        );
                    }
                }
            }
        }
    }
}
