//! Stable configurations and the sets `SC_0`, `SC_1`, `SC` (Definition 2).
//!
//! A configuration `C` is *b-stable* if every configuration reachable from
//! `C` has output `b` (all agents populate states of output `b`).  On a fixed
//! population slice this is computable exactly: `C` is b-stable iff no
//! configuration containing an agent of output `≠ b` is reachable from `C`.
//!
//! The computation is a backward bitset fixpoint over the arena identifiers
//! of an explored [`ReachabilityGraph`]: one scan over the raw count slices
//! classifies every configuration by the outputs it populates, and one
//! backward closure per output class yields `SC_b` as the complement of
//! "can reach a bad configuration" — no per-node [`Config`] is materialised.

use crate::arena::ConfigArena;
use crate::bitset::BitSet;
use crate::graph::{ExploreLimits, ReachabilityGraph};
use popproto_model::{Config, Output, Protocol};
use serde::{Deserialize, Serialize};

/// Classifies every interned configuration by the outputs it populates:
/// returns `(bad_for_0, bad_for_1)` where `bad_for_b` holds the
/// configurations populating some state of output `≠ b`.
///
/// Shared by [`StableSets::compute`] (CSR engine) and the
/// frontier-compressed engine — the two must classify identically for their
/// stable sets to stay bit-identical, so the classification exists once.
pub(crate) fn classify_bad_sets(protocol: &Protocol, arena: &ConfigArena) -> (BitSet, BitSet) {
    let outputs: Vec<Output> = protocol
        .state_ids()
        .map(|q| protocol.output_of(q))
        .collect();
    let mut bad_for_0 = BitSet::new(arena.len());
    let mut bad_for_1 = BitSet::new(arena.len());
    for (id, counts) in arena.iter() {
        for (q, &count) in counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            match outputs[q] {
                Output::False => bad_for_1.insert(id),
                Output::True => bad_for_0.insert(id),
            };
        }
    }
    (bad_for_0, bad_for_1)
}

/// The b-stable configurations of a reachability graph, for both outputs,
/// stored as bitsets over the graph's identifiers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StableSets {
    stable0: BitSet,
    stable1: BitSet,
}

impl StableSets {
    /// Computes the stable sets of all configurations in the graph.
    pub fn compute(protocol: &Protocol, graph: &ReachabilityGraph) -> Self {
        // One pass over the raw slices classifies every configuration
        // ([`classify_bad_sets`]); a configuration is then b-stable iff it
        // cannot reach a bad one.
        let (bad_for_0, bad_for_1) = classify_bad_sets(protocol, graph.arena());
        StableSets {
            stable0: graph.backward_closure_of(&bad_for_0).complement(),
            stable1: graph.backward_closure_of(&bad_for_1).complement(),
        }
    }

    /// Assembles stable sets from precomputed bitsets.
    ///
    /// Used by alternative exploration engines (e.g. the frontier-compressed
    /// explorer, which computes the backward fixpoints by transition-delta
    /// regeneration instead of over a stored CSR).  The caller is responsible
    /// for the bitsets actually being the b-stable sets of its graph.
    pub fn from_parts(stable0: BitSet, stable1: BitSet) -> Self {
        StableSets { stable0, stable1 }
    }

    /// Returns whether configuration `id` is b-stable.
    pub fn is_stable(&self, id: u32, b: Output) -> bool {
        self.bitset(b).contains(id)
    }

    /// The b-stable configurations as a bitset over graph identifiers.
    pub fn bitset(&self, b: Output) -> &BitSet {
        match b {
            Output::False => &self.stable0,
            Output::True => &self.stable1,
        }
    }

    /// Identifiers of the b-stable configurations.
    pub fn stable_ids(&self, b: Output) -> Vec<u32> {
        self.bitset(b).iter().collect()
    }

    /// Identifiers of the configurations in `SC = SC_0 ∪ SC_1`.
    pub fn all_stable_ids(&self) -> Vec<u32> {
        let mut all = self.stable0.clone();
        all.union_with(&self.stable1);
        all.iter().collect()
    }

    /// Number of b-stable configurations.
    pub fn count(&self, b: Output) -> usize {
        self.bitset(b).count()
    }
}

/// Standalone b-stability check of a single configuration: explores forward
/// from `c` and reports whether every reachable configuration has output `b`.
///
/// Returns `None` if the exploration hits its limits before deciding.
pub fn is_stable_config(
    protocol: &Protocol,
    c: &Config,
    b: Output,
    limits: &ExploreLimits,
) -> Option<bool> {
    let graph = ReachabilityGraph::explore(protocol, std::slice::from_ref(c), limits);
    let outputs: Vec<Output> = protocol
        .state_ids()
        .map(|q| protocol.output_of(q))
        .collect();
    let offending = graph.ids().any(|id| {
        graph
            .counts_of(id)
            .iter()
            .enumerate()
            .any(|(q, &count)| count > 0 && outputs[q] != b)
    });
    if offending {
        Some(false)
    } else if graph.is_complete() {
        Some(true)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popproto_model::{Output, ProtocolBuilder};

    fn threshold2_protocol() -> Protocol {
        let mut b = ProtocolBuilder::new("x >= 2");
        let zero = b.add_state("0", Output::False);
        let one = b.add_state("1", Output::False);
        let two = b.add_state("2", Output::True);
        b.add_transition((one, one), (zero, two)).unwrap();
        b.add_transition((zero, two), (two, two)).unwrap();
        b.add_transition((one, two), (two, two)).unwrap();
        b.set_input_state("x", one);
        b.build().unwrap()
    }

    #[test]
    fn stable_sets_of_threshold_protocol() {
        let p = threshold2_protocol();
        let g =
            ReachabilityGraph::explore(&p, &[p.initial_config_unary(3)], &ExploreLimits::default());
        let stable = StableSets::compute(&p, &g);
        // From ⟨3·q1⟩ every configuration can still reach ⟨3·q2⟩ (output 1),
        // so no reachable configuration is 0-stable...
        assert_eq!(stable.count(Output::False), 0);
        // ...and the only 1-stable configuration is ⟨3·q2⟩ itself.
        let ones = stable.stable_ids(Output::True);
        assert_eq!(ones.len(), 1);
        assert_eq!(g.config(ones[0]).counts(), &[0, 0, 3]);
        assert_eq!(stable.all_stable_ids(), ones);
        assert!(stable.is_stable(ones[0], Output::True));
        assert!(!stable.is_stable(ones[0], Output::False));
    }

    #[test]
    fn input_one_is_zero_stable() {
        let p = threshold2_protocol();
        // A single agent in state 1 can never change state: it is 0-stable.
        let g =
            ReachabilityGraph::explore(&p, &[p.initial_config_unary(1)], &ExploreLimits::default());
        let stable = StableSets::compute(&p, &g);
        assert_eq!(stable.count(Output::False), 1);
        assert_eq!(stable.count(Output::True), 0);
    }

    #[test]
    fn standalone_stability_check() {
        let p = threshold2_protocol();
        let all_two = Config::from_counts(vec![0, 0, 4]);
        assert_eq!(
            is_stable_config(&p, &all_two, Output::True, &ExploreLimits::default()),
            Some(true)
        );
        assert_eq!(
            is_stable_config(&p, &all_two, Output::False, &ExploreLimits::default()),
            Some(false)
        );
        // A mixed configuration is not 0-stable (it already contains a 1-output agent)
        // and not 1-stable either... actually ⟨1·q0, 1·q2⟩ can only move to ⟨2·q2⟩,
        // so it IS 1-stable? No: it contains q0 with output 0, but 1-stability asks
        // that every *reachable* configuration has output 1 — including itself.
        let mixed = Config::from_counts(vec![1, 0, 1]);
        assert_eq!(
            is_stable_config(&p, &mixed, Output::True, &ExploreLimits::default()),
            Some(false)
        );
    }

    #[test]
    fn truncated_exploration_is_inconclusive() {
        // A two-hop chain a → b → c where only c has output 1: with the
        // exploration capped at one expansion, no 1-output state is seen yet,
        // so 0-stability of the big slice cannot be decided either way.
        let mut b = ProtocolBuilder::new("chain");
        let qa = b.add_state("a", Output::False);
        let qb = b.add_state("b", Output::False);
        let qc = b.add_state("c", Output::True);
        b.add_transition((qa, qa), (qb, qb)).unwrap();
        b.add_transition((qb, qb), (qc, qc)).unwrap();
        b.set_input_state("x", qa);
        let p = b.build().unwrap();
        let big = p.initial_config_unary(40);
        assert_eq!(
            is_stable_config(&p, &big, Output::False, &ExploreLimits::with_max_configs(1)),
            None
        );
        // With room to explore, the verdict flips to a definite "not stable".
        assert_eq!(
            is_stable_config(&p, &big, Output::False, &ExploreLimits::default()),
            Some(false)
        );
    }

    #[test]
    fn downward_closedness_of_stable_sets_lemma_31() {
        // Lemma 3.1: SC_b is downward closed.  Check it empirically on the
        // slice of size ≤ 4: for every 1-stable C and every C' ≤ C, C' is 1-stable.
        let p = threshold2_protocol();
        let limits = ExploreLimits::default();
        let mut stable_configs: Vec<Config> = Vec::new();
        // Enumerate all configurations with at most 4 agents and record the stable ones.
        for a in 0..=4u64 {
            for b in 0..=(4 - a) {
                for c in 0..=(4 - a - b) {
                    let cfg = Config::from_counts(vec![a, b, c]);
                    if cfg.size() < 2 {
                        continue; // configurations have at least 2 agents
                    }
                    if is_stable_config(&p, &cfg, Output::True, &limits) == Some(true) {
                        stable_configs.push(cfg);
                    }
                }
            }
        }
        assert!(!stable_configs.is_empty());
        for c in &stable_configs {
            for a in 0..=c.counts()[0] {
                for b in 0..=c.counts()[1] {
                    for d in 0..=c.counts()[2] {
                        let smaller = Config::from_counts(vec![a, b, d]);
                        if smaller.size() < 2 {
                            continue;
                        }
                        assert_eq!(
                            is_stable_config(&p, &smaller, Output::True, &limits),
                            Some(true),
                            "downward closure violated at {smaller} ≤ {c}"
                        );
                    }
                }
            }
        }
    }
}
