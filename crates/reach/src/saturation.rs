//! Reaching `j`-saturated configurations (Lemmas 5.3 and 5.4).
//!
//! Lemma 5.4 shows that for a leaderless protocol with `n` states there is an
//! input `3^n` and a word of length at most `3^n` reaching a 1-saturated
//! configuration (every state populated).  By monotonicity, input `j·3^n`
//! reaches a `j`-saturated configuration.  This module finds the *actual*
//! smallest such input and the shortest witnessing execution on bounded
//! slices, so experiment E4 can compare them against the `3^n` bound.

use crate::graph::{ExploreLimits, ReachabilityGraph};
use popproto_model::{Config, Protocol};
use serde::{Deserialize, Serialize};

/// A witness that some input reaches a `j`-saturated configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SaturationWitness {
    /// The unary input used.
    pub input: u64,
    /// The saturation level `j` achieved.
    pub level: u64,
    /// The saturated configuration reached.
    pub config: Config,
    /// Length of the shortest execution reaching it.
    pub path_length: usize,
}

/// Finds, for the unary input `i`, a shortest execution from `IC(i)` to a
/// `j`-saturated configuration, if one exists within the exploration limits.
pub fn find_saturated_config(
    protocol: &Protocol,
    input: u64,
    level: u64,
    limits: &ExploreLimits,
) -> Option<SaturationWitness> {
    let ic = protocol.initial_config_unary(input);
    let graph = ReachabilityGraph::explore(protocol, &[ic], limits);
    let path = graph.shortest_path_to(graph.initial_ids(), |id| {
        graph.counts_of(id).iter().all(|&c| c as u64 >= level)
    })?;
    let last = *path.last().expect("path is non-empty");
    Some(SaturationWitness {
        input,
        level,
        config: graph.config(last),
        path_length: path.len() - 1,
    })
}

/// The smallest unary input `i ≤ max_input` from which a `j`-saturated
/// configuration is reachable, with its witness.
///
/// Returns `None` if no input up to `max_input` suffices (or the exploration
/// limits were too tight to find it).
pub fn min_input_for_saturation(
    protocol: &Protocol,
    level: u64,
    max_input: u64,
    limits: &ExploreLimits,
) -> Option<SaturationWitness> {
    // A j-saturated configuration needs at least j·|Q| agents.
    let lower = level * protocol.num_states() as u64;
    let start = lower.max(1);
    (start..=max_input).find_map(|i| find_saturated_config(protocol, i, level, limits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use popproto_model::{Output, ProtocolBuilder};

    /// P'_2 : states {0, 1, 2, 4}, x ≥ 4 by doubling.
    fn binary_counter() -> Protocol {
        let mut b = ProtocolBuilder::new("x >= 4");
        let zero = b.add_state("0", Output::False);
        let one = b.add_state("1", Output::False);
        let two = b.add_state("2", Output::False);
        let four = b.add_state("4", Output::True);
        b.add_transition((one, one), (zero, two)).unwrap();
        b.add_transition((two, two), (zero, four)).unwrap();
        for &a in &[zero, one, two] {
            b.add_transition_idempotent((a, four), (four, four))
                .unwrap();
        }
        b.set_input_state("x", one);
        b.build().unwrap()
    }

    #[test]
    fn saturation_needs_enough_agents() {
        let p = binary_counter();
        let limits = ExploreLimits::default();
        // With 4 agents the 1-saturated configuration ⟨1,1,1,1⟩ is unreachable
        // (covering state 4 consumes the other values), but 7 agents suffice:
        // 1+1+1+1+1+1+1 → 0,2 combinations leave enough ones around.
        assert!(find_saturated_config(&p, 4, 1, &limits).is_none());
        let witness = min_input_for_saturation(&p, 1, 16, &limits).expect("some input saturates");
        assert!(witness.config.is_saturated(1));
        assert!(
            witness.input <= 7,
            "input {} should be at most 7",
            witness.input
        );
        // The Lemma 5.4 bound is 3^n = 81 for n = 4 states; the actual input is far smaller.
        assert!(witness.input <= 81);
        // Path length is also far below the 3^n bound.
        assert!(witness.path_length <= 81);
    }

    #[test]
    fn higher_saturation_levels_need_more_agents() {
        let p = binary_counter();
        let limits = ExploreLimits::default();
        let w1 = min_input_for_saturation(&p, 1, 20, &limits).unwrap();
        let w2 = min_input_for_saturation(&p, 2, 20, &limits).unwrap();
        assert!(w2.input >= w1.input);
        assert!(w2.config.is_saturated(2));
    }

    #[test]
    fn witness_configs_match_inputs() {
        let p = binary_counter();
        let limits = ExploreLimits::default();
        let w = min_input_for_saturation(&p, 1, 16, &limits).unwrap();
        assert_eq!(w.config.size(), w.input);
        assert_eq!(w.level, 1);
    }
}
