//! A fixed-size bitset over configuration identifiers.
//!
//! The closure computations of the reachability layer (forward/backward
//! fixpoints, stable sets) touch every node of graphs with hundreds of
//! thousands of configurations; a packed `u64`-word bitset keeps the
//! membership structures 8× smaller than `Vec<bool>` and makes whole-set
//! operations (union, complement checks) word-parallel.

use serde::{Deserialize, Serialize};

/// A fixed-capacity set of `u32` identifiers packed into 64-bit words.
///
/// # Examples
///
/// ```
/// use popproto_reach::BitSet;
///
/// let mut s = BitSet::new(130);
/// s.insert(0);
/// s.insert(129);
/// assert!(s.contains(0) && s.contains(129) && !s.contains(64));
/// assert_eq!(s.count(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty set with capacity for identifiers `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The capacity (number of addressable identifiers).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the capacity is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `id` is in the set.
    pub fn contains(&self, id: u32) -> bool {
        let id = id as usize;
        debug_assert!(id < self.len);
        self.words[id / 64] & (1u64 << (id % 64)) != 0
    }

    /// Inserts `id`; returns `true` if it was not already present.
    pub fn insert(&mut self, id: u32) -> bool {
        let idx = id as usize;
        debug_assert!(idx < self.len);
        let word = &mut self.words[idx / 64];
        let bit = 1u64 << (idx % 64);
        let fresh = *word & bit == 0;
        *word |= bit;
        fresh
    }

    /// Removes `id` from the set.
    pub fn remove(&mut self, id: u32) {
        let idx = id as usize;
        debug_assert!(idx < self.len);
        self.words[idx / 64] &= !(1u64 << (idx % 64));
    }

    /// Number of identifiers in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if no identifier is in the set.
    pub fn is_clear(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros();
                w &= w - 1;
                Some(wi as u32 * 64 + bit)
            })
        })
    }

    /// Iterates over the identifiers `0..len` that are *not* in the set.
    pub fn iter_absent(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len as u32).filter(move |&id| !self.contains(id))
    }

    /// The first identifier not in the set, if any.
    pub fn first_absent(&self) -> Option<u32> {
        for (wi, &word) in self.words.iter().enumerate() {
            if word != u64::MAX {
                let id = wi as u32 * 64 + (!word).trailing_zeros();
                if (id as usize) < self.len {
                    return Some(id);
                }
                return None;
            }
        }
        None
    }

    /// In-place union with `other` (capacities must match).
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// The complement within `0..len`.
    pub fn complement(&self) -> BitSet {
        let mut out = BitSet {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        // Mask the padding bits of the last word.
        if !self.len.is_multiple_of(64) {
            if let Some(last) = out.words.last_mut() {
                *last &= (1u64 << (self.len % 64)) - 1;
            }
        }
        out
    }

    /// Approximate heap usage in bytes (the packed word buffer).
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }

    /// Converts to a `Vec<bool>` (compatibility with older call sites).
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len as u32).map(|id| self.contains(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(200);
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(!s.insert(64));
        assert!(s.contains(63) && s.contains(64));
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn iteration_and_complement() {
        let mut s = BitSet::new(70);
        for id in [0u32, 1, 65, 69] {
            s.insert(id);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 65, 69]);
        let c = s.complement();
        assert_eq!(c.count(), 70 - 4);
        assert!(c.contains(2) && !c.contains(0) && !c.contains(69));
        assert_eq!(s.iter_absent().count(), 66);
    }

    #[test]
    fn first_absent_handles_full_words() {
        let mut s = BitSet::new(65);
        for id in 0..64 {
            s.insert(id);
        }
        assert_eq!(s.first_absent(), Some(64));
        s.insert(64);
        assert_eq!(s.first_absent(), None);
        assert!(BitSet::new(0).first_absent().is_none());
    }

    #[test]
    fn union() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        a.insert(1);
        b.insert(8);
        a.union_with(&b);
        assert!(a.contains(1) && a.contains(8));
        assert!(!a.is_clear());
        assert!(BitSet::new(10).is_clear());
    }

    #[test]
    fn serde_roundtrip() {
        let mut s = BitSet::new(100);
        s.insert(42);
        let json = serde_json::to_string(&s).unwrap();
        let back: BitSet = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn to_bools_matches_membership() {
        let mut s = BitSet::new(5);
        s.insert(2);
        assert_eq!(s.to_bools(), vec![false, false, true, false, false]);
    }
}
