//! Exhaustive reachability analysis of population protocols on bounded
//! population slices.
//!
//! Because interactions preserve the number of agents, the set of
//! configurations reachable from an initial configuration of size `n` is
//! finite (at most `C(n+|Q|-1, |Q|-1)` configurations).  This crate explores
//! that space exactly and derives from it the notions the paper reasons
//! about:
//!
//! * the interning configuration arena and the bitsets the exploration is
//!   built on — modules [`arena`] and [`bitset`];
//! * the reachability graph itself (CSR adjacency over arena identifiers) —
//!   module [`graph`];
//! * the sets `SC_0`, `SC_1`, `SC` of b-stable configurations (Definition 2)
//!   — module [`stable`];
//! * *correctness*: does the protocol compute a given predicate?  The paper's
//!   characterisation — for every input `v` and every `C` reachable from
//!   `IC(v)`, `C` can reach `SC_{φ(v)}` — is decidable on each slice and is
//!   implemented in [`verify`];
//! * frontier-compressed exploration — module [`frontier`]: the same exact
//!   semantics with no stored adjacency, bounding peak memory by the arena
//!   plus the live frontier instead of the full edge structure;
//! * coverability of individual states — module [`coverability`];
//! * reachability of `j`-saturated configurations (Lemmas 5.3/5.4) — module
//!   [`saturation`];
//! * empirical extraction of small bases of stable sets (Lemma 3.2) — module
//!   [`basis_extract`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod basis_extract;
pub mod bitset;
pub mod coverability;
pub mod frontier;
pub mod graph;
pub mod saturation;
pub mod stable;
pub mod verify;

pub use arena::ConfigArena;
pub use basis_extract::{extract_stable_basis, EmpiricalBasis};
pub use bitset::BitSet;
pub use coverability::{coverable_states, min_input_covering_state};
pub use frontier::{frontier_threshold_profile, FrontierGraph};
pub use graph::{ExploreLimits, ReachabilityGraph};
pub use saturation::{min_input_for_saturation, SaturationWitness};
pub use stable::{is_stable_config, StableSets};
pub use verify::{
    unary_threshold_profile, verify_predicate, verify_unary_threshold, InputProfile, InputVerdict,
    ThresholdProfile, VerificationReport,
};
