//! Frontier-compressed exploration: exact reachability analysis without a
//! stored adjacency structure.
//!
//! [`ReachabilityGraph`](crate::graph::ReachabilityGraph) keeps two CSR
//! arrays (successors and their transpose) over the arena identifiers — `8`
//! bytes per directed edge.  On
//! large slices the edge set dwarfs the configuration set
//! (`binary_counter(3)` at input 80 has 411k configurations but ~2.55M
//! edges), so the adjacency dominates peak memory even though it is only
//! ever *derived* data: every edge is recomputable in `O(|Q|)` from the
//! transition deltas and the interned count rows.
//!
//! [`FrontierGraph`] therefore stores nothing but the arena.  Exploration
//! expands the implicit BFS frontier exactly like the CSR explorer (same
//! interning order, same identifiers, same truncation behaviour) but
//! discards each node's successor list as soon as the successors are
//! interned; the per-level adjacency is "folded" into the arena and never
//! materialised again.  The closures the verification layer needs —
//! backward bitset fixpoints towards stable sets — are computed by
//! *regenerating* predecessor edges on demand: a predecessor of `C` under
//! transition `(p₀,p₁) ↦ (q₀,q₁)` is `C − post + pre`, interned iff
//! reachable, and the regenerated edge set provably equals the CSR edge set
//! (see `crates/reach/README.md` for the argument).  Peak memory is the
//! arena plus a handful of bitsets, instead of the arena plus the full edge
//! structure.
//!
//! [`frontier_threshold_profile`] is the drop-in replacement for
//! [`unary_threshold_profile`] on this engine and produces **bit-identical**
//! [`ThresholdProfile`]s (equality is part of the test suite), so the
//! busy-beaver pipeline can pick the engine per slice size.
//!
//! [`unary_threshold_profile`]: crate::verify::unary_threshold_profile

use crate::arena::ConfigArena;
use crate::bitset::BitSet;
use crate::graph::ExploreLimits;
use crate::stable::StableSets;
use crate::verify::{InputProfile, ThresholdProfile};
use popproto_model::{Config, Output, Protocol};

/// An exactly explored slice without stored adjacency: configurations are
/// interned in BFS discovery order (identical to [`ReachabilityGraph`]'s
/// identifiers) and every graph question is answered by regenerating edges
/// from the transition deltas.
///
/// [`ReachabilityGraph`]: crate::graph::ReachabilityGraph
#[derive(Debug, Clone)]
pub struct FrontierGraph {
    arena: ConfigArena,
    /// Non-silent transitions as raw state-index deltas
    /// `(pre0, pre1, post0, post1)`.
    deltas: Vec<[usize; 4]>,
    initial: Vec<u32>,
    /// Identifiers `< expanded` had their successors generated; a truncated
    /// exploration leaves a suffix of discovered-but-unexpanded nodes, which
    /// (as in the CSR explorer) have no outgoing edges.
    expanded: usize,
    complete: bool,
    /// Largest `arena.heap_bytes()` plus transient scratch observed while
    /// exploring (monotone in practice, recorded for the benches).
    peak_bytes: usize,
}

impl FrontierGraph {
    /// Explores the configuration space reachable from `initial` under
    /// `protocol`, up to the given limits, storing no adjacency.
    ///
    /// The interning order — and therefore every identifier — matches
    /// [`ReachabilityGraph::explore`] exactly.
    ///
    /// [`ReachabilityGraph::explore`]: crate::graph::ReachabilityGraph::explore
    pub fn explore(protocol: &Protocol, initial: &[Config], limits: &ExploreLimits) -> Self {
        let n = protocol.num_states();
        let mut arena = ConfigArena::new(n);
        let mut initial_ids: Vec<u32> = Vec::new();
        for c in initial {
            let (id, _) = arena.intern_config(c);
            if !initial_ids.contains(&id) {
                initial_ids.push(id);
            }
        }

        let deltas = crate::graph::transition_deltas(protocol);

        let mut current: Vec<u32> = vec![0; n];
        let mut scratch: Vec<u32> = vec![0; n];
        let mut complete = true;
        let mut head: usize = 0;
        while head < arena.len() {
            if arena.len() > limits.max_configs {
                complete = false;
                break;
            }
            let id = head as u32;
            head += 1;
            current.copy_from_slice(arena.counts_of(id));
            for &[p0, p1, q0, q1] in &deltas {
                let enabled = if p0 == p1 {
                    current[p0] >= 2
                } else {
                    current[p0] >= 1 && current[p1] >= 1
                };
                if !enabled {
                    continue;
                }
                scratch.copy_from_slice(&current);
                scratch[p0] -= 1;
                scratch[p1] -= 1;
                scratch[q0] += 1;
                scratch[q1] += 1;
                arena.intern(&scratch);
            }
        }
        let peak_bytes = arena.heap_bytes() + 2 * n * std::mem::size_of::<u32>();
        FrontierGraph {
            arena,
            deltas,
            initial: initial_ids,
            expanded: head,
            complete,
            peak_bytes,
        }
    }

    /// Number of configurations explored.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Returns `true` if no configuration was explored.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// Returns `true` if the exploration terminated without hitting limits.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// The underlying configuration arena.
    pub fn arena(&self) -> &ConfigArena {
        &self.arena
    }

    /// Identifiers of the initial configurations.
    pub fn initial_ids(&self) -> &[u32] {
        &self.initial
    }

    /// The raw count slice of the configuration with identifier `id`.
    pub fn counts_of(&self, id: u32) -> &[u32] {
        self.arena.counts_of(id)
    }

    /// The configuration with identifier `id`, materialised.
    pub fn config(&self, id: u32) -> Config {
        self.arena.config(id)
    }

    /// Peak heap bytes observed across exploration and the closures computed
    /// so far: the arena plus transient bitsets — never an edge structure.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Shrinks the arena to its live size (the exploration is finished and
    /// the arena only serves lookups from here on).
    pub fn shrink_to_fit(&mut self) {
        self.arena.shrink_to_fit();
    }

    /// The set of identifiers backward-reachable from `targets` (including
    /// them), with predecessor edges regenerated from the transition deltas
    /// instead of read from a stored transpose.
    ///
    /// Produces exactly the set [`ReachabilityGraph::backward_closure_of`]
    /// produces on the same slice: a regenerated edge `u → v` exists iff
    /// `u` was expanded, `v = u − pre + post` for a non-silent transition,
    /// and both are reachable — the CSR edge relation.
    ///
    /// [`ReachabilityGraph::backward_closure_of`]: crate::graph::ReachabilityGraph::backward_closure_of
    pub fn backward_closure_of(&mut self, targets: &BitSet) -> BitSet {
        let n = self.arena.num_states();
        let mut seen = BitSet::new(self.len());
        let mut stack: Vec<u32> = Vec::new();
        for id in targets.iter() {
            if seen.insert(id) {
                stack.push(id);
            }
        }
        let mut scratch: Vec<u32> = vec![0; n];
        let mut stack_peak = stack.len();
        while let Some(v) = stack.pop() {
            for &[p0, p1, q0, q1] in &self.deltas {
                // The predecessor candidate u = v − post + pre; valid only if
                // v actually holds the post tokens.  u then has the pre
                // tokens by construction, so the transition is enabled in u
                // and fires u → v.
                scratch.copy_from_slice(self.arena.counts_of(v));
                if q0 == q1 {
                    if scratch[q0] < 2 {
                        continue;
                    }
                    scratch[q0] -= 2;
                } else {
                    if scratch[q0] < 1 || scratch[q1] < 1 {
                        continue;
                    }
                    scratch[q0] -= 1;
                    scratch[q1] -= 1;
                }
                scratch[p0] += 1;
                scratch[p1] += 1;
                if let Some(u) = self.arena.lookup(&scratch) {
                    // Unexpanded frontier nodes of a truncated exploration
                    // have no outgoing edges (CSR semantics).
                    if (u as usize) < self.expanded && seen.insert(u) {
                        stack.push(u);
                    }
                }
            }
            stack_peak = stack_peak.max(stack.len());
        }
        self.peak_bytes = self.peak_bytes.max(
            self.arena.heap_bytes()
                + seen.heap_bytes() * 2
                + stack_peak * std::mem::size_of::<u32>(),
        );
        seen
    }

    /// The b-stable sets of the explored slice, computed with regenerated
    /// backward closures — same contract as [`StableSets::compute`], same
    /// result (the classification pass is literally shared with it).
    pub fn stable_sets(&mut self, protocol: &Protocol) -> StableSets {
        let (bad_for_0, bad_for_1) = crate::stable::classify_bad_sets(protocol, &self.arena);
        let stable0 = self.backward_closure_of(&bad_for_0).complement();
        let stable1 = self.backward_closure_of(&bad_for_1).complement();
        StableSets::from_parts(stable0, stable1)
    }
}

/// [`unary_threshold_profile`] on the frontier-compressed engine: profiles a
/// unary protocol on all inputs `2 ≤ i ≤ max_input`, exploring each slice
/// exactly once, with the same early-stop logic and a **bit-identical**
/// resulting [`ThresholdProfile`].
///
/// [`unary_threshold_profile`]: crate::verify::unary_threshold_profile
pub fn frontier_threshold_profile(
    protocol: &Protocol,
    max_input: u64,
    limits: &ExploreLimits,
) -> ThresholdProfile {
    let mut inputs = Vec::with_capacity(max_input.saturating_sub(1) as usize);
    let mut conclusive = true;
    let mut lo = 2u64;
    let mut hi = max_input;
    for i in 2..=max_input {
        let ic = protocol.initial_config_unary(i);
        let mut graph = FrontierGraph::explore(protocol, std::slice::from_ref(&ic), limits);
        let stable = graph.stable_sets(protocol);
        let mut settles = |b: Output| {
            let targets = stable.bitset(b);
            !targets.is_clear() && graph.backward_closure_of(targets).first_absent().is_none()
        };
        let profile = InputProfile {
            input: i,
            rejects: settles(Output::False),
            accepts: settles(Output::True),
            exhaustive: graph.is_complete(),
        };
        inputs.push(profile);
        if !profile.exhaustive || (!profile.rejects && !profile.accepts) {
            conclusive = false;
            break;
        }
        if profile.accepts {
            hi = hi.min(i);
        } else {
            lo = lo.max(i + 1);
        }
        if lo > hi {
            conclusive = false;
            break;
        }
    }
    ThresholdProfile {
        max_input,
        inputs,
        conclusive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ReachabilityGraph;
    use crate::verify::unary_threshold_profile;
    use popproto_model::{Output, ProtocolBuilder};
    use popproto_zoo_free::*;

    /// Tiny local zoo so the reach crate needs no dev-dependency on zoo.
    mod popproto_zoo_free {
        use popproto_model::{Output, Protocol, ProtocolBuilder};

        pub fn threshold2_protocol() -> Protocol {
            let mut b = ProtocolBuilder::new("x >= 2");
            let zero = b.add_state("0", Output::False);
            let one = b.add_state("1", Output::False);
            let two = b.add_state("2", Output::True);
            b.add_transition((one, one), (zero, two)).unwrap();
            b.add_transition((zero, two), (two, two)).unwrap();
            b.add_transition((one, two), (two, two)).unwrap();
            b.set_input_state("x", one);
            b.build().unwrap()
        }

        /// The 4-state binary counter P'_2 (decides x ≥ 4): a protocol with
        /// genuinely mixed settling behaviour and larger slices.
        pub fn counter4_protocol() -> Protocol {
            let mut b = ProtocolBuilder::new("counter");
            let one = b.add_state("1", Output::False);
            let two = b.add_state("2", Output::False);
            let four = b.add_state("4", Output::True);
            let zero = b.add_state("0", Output::False);
            b.add_transition((one, one), (two, zero)).unwrap();
            b.add_transition((two, two), (four, zero)).unwrap();
            b.add_transition((zero, four), (four, four)).unwrap();
            b.add_transition((one, four), (four, four)).unwrap();
            b.add_transition((two, four), (four, four)).unwrap();
            b.set_input_state("x", one);
            b.build().unwrap()
        }
    }

    #[test]
    fn frontier_exploration_matches_csr_ids_exactly() {
        let limits = ExploreLimits::default();
        for p in [threshold2_protocol(), counter4_protocol()] {
            for input in [2u64, 5, 9] {
                let ic = p.initial_config_unary(input);
                let csr = ReachabilityGraph::explore(&p, std::slice::from_ref(&ic), &limits);
                let frontier = FrontierGraph::explore(&p, &[ic], &limits);
                assert_eq!(csr.len(), frontier.len(), "{} @ {input}", p.name());
                assert_eq!(csr.is_complete(), frontier.is_complete());
                assert_eq!(csr.initial_ids(), frontier.initial_ids());
                for id in 0..csr.len() as u32 {
                    assert_eq!(
                        csr.counts_of(id),
                        frontier.counts_of(id),
                        "{} @ {input}: config {id} differs",
                        p.name()
                    );
                }
            }
        }
    }

    #[test]
    fn regenerated_backward_closures_match_csr() {
        let limits = ExploreLimits::default();
        for p in [threshold2_protocol(), counter4_protocol()] {
            for input in [3u64, 6, 8] {
                let ic = p.initial_config_unary(input);
                let csr = ReachabilityGraph::explore(&p, std::slice::from_ref(&ic), &limits);
                let mut frontier = FrontierGraph::explore(&p, std::slice::from_ref(&ic), &limits);
                // Seed closures from every singleton and from the terminal set.
                for id in 0..csr.len() as u32 {
                    let mut seed = BitSet::new(csr.len());
                    seed.insert(id);
                    assert_eq!(
                        csr.backward_closure_of(&seed),
                        frontier.backward_closure_of(&seed),
                        "{} @ {input}: closure from {id} differs",
                        p.name()
                    );
                }
            }
        }
    }

    #[test]
    fn truncated_exploration_matches_csr_closures() {
        let p = counter4_protocol();
        for cap in [1usize, 4, 20] {
            let limits = ExploreLimits::with_max_configs(cap);
            let ic = p.initial_config_unary(12);
            let csr = ReachabilityGraph::explore(&p, std::slice::from_ref(&ic), &limits);
            let mut frontier = FrontierGraph::explore(&p, std::slice::from_ref(&ic), &limits);
            assert_eq!(csr.len(), frontier.len(), "cap {cap}");
            assert!(!frontier.is_complete());
            for id in 0..csr.len() as u32 {
                let mut seed = BitSet::new(csr.len());
                seed.insert(id);
                assert_eq!(
                    csr.backward_closure_of(&seed),
                    frontier.backward_closure_of(&seed),
                    "cap {cap}: closure from {id} differs"
                );
            }
        }
    }

    #[test]
    fn stable_sets_match_the_csr_computation() {
        let limits = ExploreLimits::default();
        for p in [threshold2_protocol(), counter4_protocol()] {
            for input in [3u64, 7] {
                let ic = p.initial_config_unary(input);
                let csr = ReachabilityGraph::explore(&p, std::slice::from_ref(&ic), &limits);
                let expected = StableSets::compute(&p, &csr);
                let mut frontier = FrontierGraph::explore(&p, std::slice::from_ref(&ic), &limits);
                let got = frontier.stable_sets(&p);
                for b in [Output::False, Output::True] {
                    assert_eq!(
                        expected.bitset(b),
                        got.bitset(b),
                        "{} @ {input}: SC_{b} differs",
                        p.name()
                    );
                }
            }
        }
    }

    #[test]
    fn threshold_profiles_are_bit_identical() {
        let limits = ExploreLimits::default();
        for (p, max_input) in [(threshold2_protocol(), 8u64), (counter4_protocol(), 9)] {
            let csr = unary_threshold_profile(&p, max_input, &limits);
            let frontier = frontier_threshold_profile(&p, max_input, &limits);
            assert_eq!(csr.max_input, frontier.max_input);
            assert_eq!(csr.conclusive, frontier.conclusive);
            assert_eq!(csr.inputs.len(), frontier.inputs.len());
            for (a, b) in csr.inputs.iter().zip(&frontier.inputs) {
                assert_eq!(a.input, b.input);
                assert_eq!(a.rejects, b.rejects, "{} @ {}", p.name(), a.input);
                assert_eq!(a.accepts, b.accepts, "{} @ {}", p.name(), a.input);
                assert_eq!(a.exhaustive, b.exhaustive);
            }
            assert_eq!(csr.verified_threshold(), frontier.verified_threshold());
        }
        // Truncated slices must stay bit-identical too.
        let p = counter4_protocol();
        let tight = ExploreLimits::with_max_configs(3);
        let csr = unary_threshold_profile(&p, 30, &tight);
        let frontier = frontier_threshold_profile(&p, 30, &tight);
        assert_eq!(csr.conclusive, frontier.conclusive);
        assert_eq!(csr.inputs.len(), frontier.inputs.len());
    }

    #[test]
    fn peak_bytes_stay_below_the_dense_graph() {
        // A slice big enough that the edge structure dominates: the frontier
        // engine must report a strictly smaller peak than arena + CSR.
        let p = counter4_protocol();
        let limits = ExploreLimits::default();
        let ic = p.initial_config_unary(60);
        let csr = ReachabilityGraph::explore(&p, std::slice::from_ref(&ic), &limits);
        let mut frontier = FrontierGraph::explore(&p, std::slice::from_ref(&ic), &limits);
        let _ = frontier.stable_sets(&p);
        frontier.shrink_to_fit();
        assert!(csr.is_complete() && frontier.is_complete());
        assert!(
            frontier.peak_bytes() < csr.heap_bytes(),
            "frontier {} >= dense {}",
            frontier.peak_bytes(),
            csr.heap_bytes()
        );
    }

    #[test]
    fn never_accepting_protocol_profiles_identically() {
        let mut b = ProtocolBuilder::new("never");
        let s = b.add_state("s", Output::False);
        b.set_input_state("x", s);
        let p = b.build().unwrap();
        let limits = ExploreLimits::default();
        let csr = unary_threshold_profile(&p, 6, &limits);
        let frontier = frontier_threshold_profile(&p, 6, &limits);
        assert_eq!(csr.verified_threshold(), None);
        assert_eq!(frontier.verified_threshold(), None);
        assert_eq!(csr.conclusive, frontier.conclusive);
    }
}
