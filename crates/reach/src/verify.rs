//! Verification that a protocol computes a predicate, on bounded slices.
//!
//! The paper (Section 3) characterises correctness as follows: a protocol
//! computes `φ` iff for every input `v` and every configuration `C` reachable
//! from `IC(v)`, `C` can reach `SC_{φ(v)}`.  On each population slice both
//! conditions are decidable by exhaustive exploration; this module applies
//! the characterisation to all inputs up to a bound.

use crate::graph::{ExploreLimits, ReachabilityGraph};
use crate::stable::StableSets;
use popproto_model::{Config, Input, Output, Predicate, Protocol};
use serde::{Deserialize, Serialize};

/// The verdict for a single input.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InputVerdict {
    /// The input that was checked.
    pub input: Input,
    /// The expected output `φ(v)`.
    pub expected: bool,
    /// `true` if every reachable configuration can reach a `φ(v)`-stable one.
    pub correct: bool,
    /// `true` if the exploration was exhaustive (the verdict is definitive).
    pub exhaustive: bool,
    /// Number of configurations reachable from `IC(v)`.
    pub reachable_configs: usize,
    /// Number of reachable configurations that are `φ(v)`-stable.
    pub stable_configs: usize,
    /// A configuration from which the correct stable set is unreachable, if any.
    pub counterexample: Option<Config>,
}

/// The aggregated result of verifying a protocol against a predicate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VerificationReport {
    /// Name of the verified protocol.
    pub protocol: String,
    /// Rendering of the verified predicate.
    pub predicate: String,
    /// Per-input verdicts.
    pub verdicts: Vec<InputVerdict>,
}

impl VerificationReport {
    /// Returns `true` if every checked input was verified correct.
    pub fn all_correct(&self) -> bool {
        self.verdicts.iter().all(|v| v.correct)
    }

    /// Returns `true` if every verdict was reached by exhaustive exploration.
    pub fn all_exhaustive(&self) -> bool {
        self.verdicts.iter().all(|v| v.exhaustive)
    }

    /// The verdicts that failed, if any.
    pub fn failures(&self) -> Vec<&InputVerdict> {
        self.verdicts.iter().filter(|v| !v.correct).collect()
    }
}

/// Verifies one input: explores the slice, computes the stable sets and checks
/// the paper's correctness characterisation.
pub fn verify_input(
    protocol: &Protocol,
    predicate: &Predicate,
    input: &Input,
    limits: &ExploreLimits,
) -> InputVerdict {
    let expected = predicate.eval(input);
    let expected_output = Output::from_bool(expected);
    let ic = protocol.initial_config(input);
    let graph = ReachabilityGraph::explore(protocol, &[ic], limits);
    let stable = StableSets::compute(protocol, &graph);
    let target_ids = stable.stable_ids(expected_output);
    let can_reach_target = graph.backward_closure(&target_ids);
    let counterexample_id = (0..graph.len()).find(|&id| !can_reach_target[id]);
    InputVerdict {
        input: input.clone(),
        expected,
        correct: counterexample_id.is_none() && !target_ids.is_empty(),
        exhaustive: graph.is_complete(),
        reachable_configs: graph.len(),
        stable_configs: target_ids.len(),
        counterexample: counterexample_id.map(|id| graph.config(id).clone()),
    }
}

/// Verifies a protocol against a predicate on an explicit list of inputs.
pub fn verify_predicate(
    protocol: &Protocol,
    predicate: &Predicate,
    inputs: &[Input],
    limits: &ExploreLimits,
) -> VerificationReport {
    VerificationReport {
        protocol: protocol.name().to_string(),
        predicate: predicate.to_string(),
        verdicts: inputs
            .iter()
            .map(|input| verify_input(protocol, predicate, input, limits))
            .collect(),
    }
}

/// Verifies a unary protocol against the threshold predicate `x ≥ eta` on all
/// inputs `2 ≤ i ≤ max_input` (the model requires populations of size ≥ 2).
pub fn verify_unary_threshold(
    protocol: &Protocol,
    eta: u64,
    max_input: u64,
    limits: &ExploreLimits,
) -> VerificationReport {
    let predicate = Predicate::threshold_at_least(eta);
    let inputs: Vec<Input> = (2..=max_input).map(Input::unary).collect();
    verify_predicate(protocol, &predicate, &inputs, limits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use popproto_model::{Output, ProtocolBuilder};

    fn threshold2_protocol() -> Protocol {
        let mut b = ProtocolBuilder::new("x >= 2");
        let zero = b.add_state("0", Output::False);
        let one = b.add_state("1", Output::False);
        let two = b.add_state("2", Output::True);
        b.add_transition((one, one), (zero, two)).unwrap();
        b.add_transition((zero, two), (two, two)).unwrap();
        b.add_transition((one, two), (two, two)).unwrap();
        b.set_input_state("x", one);
        b.build().unwrap()
    }

    /// A deliberately broken protocol: claims x ≥ 2 but never flips output.
    fn broken_protocol() -> Protocol {
        let mut b = ProtocolBuilder::new("broken");
        let one = b.add_state("1", Output::False);
        let _two = b.add_state("2", Output::True);
        b.set_input_state("x", one);
        b.build().unwrap()
    }

    #[test]
    fn correct_protocol_verifies() {
        let p = threshold2_protocol();
        let report = verify_unary_threshold(&p, 2, 8, &ExploreLimits::default());
        assert!(report.all_correct(), "failures: {:?}", report.failures());
        assert!(report.all_exhaustive());
        assert_eq!(report.verdicts.len(), 7);
        for v in &report.verdicts {
            assert_eq!(v.expected, v.input.total() >= 2);
            assert!(v.stable_configs >= 1);
        }
    }

    #[test]
    fn broken_protocol_fails() {
        let p = broken_protocol();
        let report = verify_unary_threshold(&p, 2, 4, &ExploreLimits::default());
        assert!(!report.all_correct());
        // Inputs ≥ 2 should accept but the protocol cannot: each such verdict fails.
        for v in &report.verdicts {
            assert!(!v.correct);
        }
        assert_eq!(report.failures().len(), 3);
    }

    #[test]
    fn wrong_threshold_is_detected() {
        // The protocol computes x ≥ 2; claiming it computes x ≥ 3 must fail at input 2.
        let p = threshold2_protocol();
        let report = verify_unary_threshold(&p, 3, 5, &ExploreLimits::default());
        assert!(!report.all_correct());
        let failing: Vec<u64> = report
            .failures()
            .iter()
            .map(|v| v.input.total())
            .collect();
        assert!(failing.contains(&2));
    }

    #[test]
    fn verdicts_report_counterexamples() {
        let p = broken_protocol();
        let verdict = verify_input(
            &p,
            &Predicate::threshold_at_least(2),
            &Input::unary(3),
            &ExploreLimits::default(),
        );
        assert!(!verdict.correct);
        // The initial configuration itself cannot reach a 1-stable configuration.
        assert!(verdict.counterexample.is_some() || verdict.stable_configs == 0);
    }

    #[test]
    fn multivariate_predicate_verification() {
        // A trivial 2-variable protocol computing "true": all states have output 1.
        let mut b = ProtocolBuilder::new("always true");
        let a = b.add_state("a", Output::True);
        let c = b.add_state("c", Output::True);
        b.set_input_state("x", a);
        b.set_input_state("y", c);
        let p = b.build().unwrap();
        let inputs = vec![
            Input::from_counts(vec![1, 1]),
            Input::from_counts(vec![2, 3]),
        ];
        let report = verify_predicate(&p, &Predicate::Const(true), &inputs, &ExploreLimits::default());
        assert!(report.all_correct());
    }
}
