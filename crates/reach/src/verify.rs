//! Verification that a protocol computes a predicate, on bounded slices.
//!
//! The paper (Section 3) characterises correctness as follows: a protocol
//! computes `φ` iff for every input `v` and every configuration `C` reachable
//! from `IC(v)`, `C` can reach `SC_{φ(v)}`.  On each population slice both
//! conditions are decidable by exhaustive exploration; this module applies
//! the characterisation to all inputs up to a bound.
//!
//! Besides the per-predicate drivers, [`unary_threshold_profile`] explores
//! every slice **once** and records, per input, whether the protocol settles
//! on 0, on 1, or on neither.  A single profile answers "which threshold (if
//! any) does this protocol compute?" for *all* candidate thresholds at once —
//! the busy-beaver enumeration previously re-explored every slice for every
//! candidate `η`, a `max_input`-fold waste on its hottest path.

use crate::graph::{ExploreLimits, ReachabilityGraph};
use crate::stable::StableSets;
use popproto_model::{Config, Input, Output, Predicate, Protocol};
use serde::{Deserialize, Serialize};

/// The verdict for a single input.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InputVerdict {
    /// The input that was checked.
    pub input: Input,
    /// The expected output `φ(v)`.
    pub expected: bool,
    /// `true` if every reachable configuration can reach a `φ(v)`-stable one.
    pub correct: bool,
    /// `true` if the exploration was exhaustive (the verdict is definitive).
    pub exhaustive: bool,
    /// Number of configurations reachable from `IC(v)`.
    pub reachable_configs: usize,
    /// Number of reachable configurations that are `φ(v)`-stable.
    pub stable_configs: usize,
    /// A configuration from which the correct stable set is unreachable, if any.
    pub counterexample: Option<Config>,
}

/// The aggregated result of verifying a protocol against a predicate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VerificationReport {
    /// Name of the verified protocol.
    pub protocol: String,
    /// Rendering of the verified predicate.
    pub predicate: String,
    /// Per-input verdicts.
    pub verdicts: Vec<InputVerdict>,
}

impl VerificationReport {
    /// Returns `true` if every checked input was verified correct.
    pub fn all_correct(&self) -> bool {
        self.verdicts.iter().all(|v| v.correct)
    }

    /// Returns `true` if every verdict was reached by exhaustive exploration.
    pub fn all_exhaustive(&self) -> bool {
        self.verdicts.iter().all(|v| v.exhaustive)
    }

    /// The verdicts that failed, if any.
    pub fn failures(&self) -> Vec<&InputVerdict> {
        self.verdicts.iter().filter(|v| !v.correct).collect()
    }
}

/// Verifies one input: explores the slice, computes the stable sets and checks
/// the paper's correctness characterisation.
pub fn verify_input(
    protocol: &Protocol,
    predicate: &Predicate,
    input: &Input,
    limits: &ExploreLimits,
) -> InputVerdict {
    let expected = predicate.eval(input);
    let expected_output = Output::from_bool(expected);
    let ic = protocol.initial_config(input);
    let graph = ReachabilityGraph::explore(protocol, &[ic], limits);
    let stable = StableSets::compute(protocol, &graph);
    let targets = stable.bitset(expected_output);
    let can_reach_target = graph.backward_closure_of(targets);
    let counterexample_id = can_reach_target.first_absent();
    InputVerdict {
        input: input.clone(),
        expected,
        correct: counterexample_id.is_none() && !targets.is_clear(),
        exhaustive: graph.is_complete(),
        reachable_configs: graph.len(),
        stable_configs: targets.count(),
        counterexample: counterexample_id.map(|id| graph.config(id)),
    }
}

/// Verifies a protocol against a predicate on an explicit list of inputs.
pub fn verify_predicate(
    protocol: &Protocol,
    predicate: &Predicate,
    inputs: &[Input],
    limits: &ExploreLimits,
) -> VerificationReport {
    VerificationReport {
        protocol: protocol.name().to_string(),
        predicate: predicate.to_string(),
        verdicts: inputs
            .iter()
            .map(|input| verify_input(protocol, predicate, input, limits))
            .collect(),
    }
}

/// Verifies a unary protocol against the threshold predicate `x ≥ eta` on all
/// inputs `2 ≤ i ≤ max_input` (the model requires populations of size ≥ 2).
pub fn verify_unary_threshold(
    protocol: &Protocol,
    eta: u64,
    max_input: u64,
    limits: &ExploreLimits,
) -> VerificationReport {
    let predicate = Predicate::threshold_at_least(eta);
    let inputs: Vec<Input> = (2..=max_input).map(Input::unary).collect();
    verify_predicate(protocol, &predicate, &inputs, limits)
}

/// The settling behaviour of one unary input slice: which consensus values
/// the protocol is guaranteed to reach from `IC(i)`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct InputProfile {
    /// The unary input `i`.
    pub input: u64,
    /// `true` iff every configuration reachable from `IC(i)` can reach a
    /// 0-stable configuration (and at least one exists): the protocol
    /// correctly *rejects* this input.
    pub rejects: bool,
    /// The accepting counterpart of [`InputProfile::rejects`].
    pub accepts: bool,
    /// `true` if the exploration of this slice was exhaustive.
    pub exhaustive: bool,
}

/// The per-input settling profile of a unary protocol over `2..=max_input`.
///
/// One exploration and one stable-set computation per input answers the
/// verification question for *every* candidate threshold simultaneously.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThresholdProfile {
    /// The largest input profiled.
    pub max_input: u64,
    /// Per-input profiles for `2..=max_input`, in input order.  May stop
    /// early (see [`ThresholdProfile::conclusive`]).
    pub inputs: Vec<InputProfile>,
    /// `false` if profiling stopped early because no threshold can verify,
    /// whatever the remaining inputs do: some slice settled on neither
    /// output, was not exhaustively explored, or the accept/reject pattern
    /// seen so far is consistent with no `η ∈ [2, max_input]` (e.g. a
    /// rejecting input above an accepting one).
    pub conclusive: bool,
}

impl ThresholdProfile {
    /// Returns `true` if the profile is consistent with the protocol
    /// computing `x ≥ eta` on every profiled input.
    pub fn supports(&self, eta: u64) -> bool {
        self.conclusive
            && self
                .inputs
                .iter()
                .all(|p| if p.input >= eta { p.accepts } else { p.rejects })
    }

    /// The threshold `η` the protocol provably computes, confirmed on all
    /// inputs `2 ≤ i ≤ max_input` with the flip strictly below `max_input`.
    ///
    /// Matches the seed's `verified_threshold` semantics exactly: the
    /// smallest supported `η`, and `None` when the only supported `η` equals
    /// `max_input` (the flip position would not be certain).
    pub fn verified_threshold(&self) -> Option<u64> {
        if !self.conclusive {
            return None;
        }
        for eta in 2..=self.max_input {
            if self.supports(eta) {
                if eta < self.max_input {
                    return Some(eta);
                }
                return None;
            }
        }
        None
    }
}

/// Profiles a unary protocol on all inputs `2 ≤ i ≤ max_input`, exploring
/// each slice exactly once.
///
/// Profiling aborts early (marking the profile inconclusive) as soon as no
/// threshold can verify, whatever the remaining inputs do:
///
/// * a slice settles on neither output, or its exploration is truncated;
/// * the window of still-feasible thresholds becomes empty.  An accepting
///   input `i` forces `η ≤ i`, a rejecting input `i` forces `η ≥ i + 1`, so
///   the feasible window `[lo, hi]` shrinks monotonically as inputs are
///   profiled in increasing order; a reject above an accept empties it.
///
/// The busy-beaver enumeration relies on this reject-on-first-failure
/// behaviour: a candidate whose verdict flips the wrong way at input `i`
/// stops after slice `i` instead of exploring all `max_input − 1` slices.
pub fn unary_threshold_profile(
    protocol: &Protocol,
    max_input: u64,
    limits: &ExploreLimits,
) -> ThresholdProfile {
    let mut inputs = Vec::with_capacity(max_input.saturating_sub(1) as usize);
    let mut conclusive = true;
    // Feasible thresholds form a window [lo, hi] ⊆ [2, max_input].
    let mut lo = 2u64;
    let mut hi = max_input;
    for i in 2..=max_input {
        let ic = protocol.initial_config_unary(i);
        let graph = ReachabilityGraph::explore(protocol, &[ic], limits);
        let stable = StableSets::compute(protocol, &graph);
        let settles = |b: Output| {
            let targets = stable.bitset(b);
            !targets.is_clear() && graph.backward_closure_of(targets).first_absent().is_none()
        };
        let profile = InputProfile {
            input: i,
            rejects: settles(Output::False),
            accepts: settles(Output::True),
            exhaustive: graph.is_complete(),
        };
        inputs.push(profile);
        if !profile.exhaustive || (!profile.rejects && !profile.accepts) {
            conclusive = false;
            break;
        }
        if profile.accepts {
            hi = hi.min(i);
        } else {
            lo = lo.max(i + 1);
        }
        if lo > hi {
            conclusive = false;
            break;
        }
    }
    ThresholdProfile {
        max_input,
        inputs,
        conclusive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popproto_model::{Output, ProtocolBuilder};

    fn threshold2_protocol() -> Protocol {
        let mut b = ProtocolBuilder::new("x >= 2");
        let zero = b.add_state("0", Output::False);
        let one = b.add_state("1", Output::False);
        let two = b.add_state("2", Output::True);
        b.add_transition((one, one), (zero, two)).unwrap();
        b.add_transition((zero, two), (two, two)).unwrap();
        b.add_transition((one, two), (two, two)).unwrap();
        b.set_input_state("x", one);
        b.build().unwrap()
    }

    /// A deliberately broken protocol: claims x ≥ 2 but never flips output.
    fn broken_protocol() -> Protocol {
        let mut b = ProtocolBuilder::new("broken");
        let one = b.add_state("1", Output::False);
        let _two = b.add_state("2", Output::True);
        b.set_input_state("x", one);
        b.build().unwrap()
    }

    #[test]
    fn correct_protocol_verifies() {
        let p = threshold2_protocol();
        let report = verify_unary_threshold(&p, 2, 8, &ExploreLimits::default());
        assert!(report.all_correct(), "failures: {:?}", report.failures());
        assert!(report.all_exhaustive());
        assert_eq!(report.verdicts.len(), 7);
        for v in &report.verdicts {
            assert_eq!(v.expected, v.input.total() >= 2);
            assert!(v.stable_configs >= 1);
        }
    }

    #[test]
    fn broken_protocol_fails() {
        let p = broken_protocol();
        let report = verify_unary_threshold(&p, 2, 4, &ExploreLimits::default());
        assert!(!report.all_correct());
        // Inputs ≥ 2 should accept but the protocol cannot: each such verdict fails.
        for v in &report.verdicts {
            assert!(!v.correct);
        }
        assert_eq!(report.failures().len(), 3);
    }

    #[test]
    fn wrong_threshold_is_detected() {
        // The protocol computes x ≥ 2; claiming it computes x ≥ 3 must fail at input 2.
        let p = threshold2_protocol();
        let report = verify_unary_threshold(&p, 3, 5, &ExploreLimits::default());
        assert!(!report.all_correct());
        let failing: Vec<u64> = report.failures().iter().map(|v| v.input.total()).collect();
        assert!(failing.contains(&2));
    }

    #[test]
    fn verdicts_report_counterexamples() {
        let p = broken_protocol();
        let verdict = verify_input(
            &p,
            &Predicate::threshold_at_least(2),
            &Input::unary(3),
            &ExploreLimits::default(),
        );
        assert!(!verdict.correct);
        // The initial configuration itself cannot reach a 1-stable configuration.
        assert!(verdict.counterexample.is_some() || verdict.stable_configs == 0);
    }

    #[test]
    fn multivariate_predicate_verification() {
        // A trivial 2-variable protocol computing "true": all states have output 1.
        let mut b = ProtocolBuilder::new("always true");
        let a = b.add_state("a", Output::True);
        let c = b.add_state("c", Output::True);
        b.set_input_state("x", a);
        b.set_input_state("y", c);
        let p = b.build().unwrap();
        let inputs = vec![
            Input::from_counts(vec![1, 1]),
            Input::from_counts(vec![2, 3]),
        ];
        let report = verify_predicate(
            &p,
            &Predicate::Const(true),
            &inputs,
            &ExploreLimits::default(),
        );
        assert!(report.all_correct());
    }

    #[test]
    fn profile_agrees_with_per_eta_verification() {
        let limits = ExploreLimits::default();
        let p = threshold2_protocol();
        let profile = unary_threshold_profile(&p, 8, &limits);
        assert!(profile.conclusive);
        assert_eq!(profile.verified_threshold(), Some(2));
        for eta in 2..=8u64 {
            let report = verify_unary_threshold(&p, eta, 8, &limits);
            assert_eq!(
                profile.supports(eta),
                report.all_correct() && report.all_exhaustive(),
                "profile disagrees with per-η verification at η = {eta}"
            );
        }
    }

    #[test]
    fn profile_of_broken_protocol_is_inconclusive_or_unsupported() {
        let p = broken_protocol();
        let profile = unary_threshold_profile(&p, 5, &limits_default());
        assert_eq!(profile.verified_threshold(), None);
        // The broken protocol never accepts, so no input slice accepts…
        assert!(profile.inputs.iter().all(|p| !p.accepts));
        // …and it rejects everywhere (it is constantly 0): once every input
        // up to max_input has rejected, no threshold in range remains
        // feasible and the profile reports itself inconclusive.
        for eta in 2..5 {
            assert!(!profile.supports(eta));
        }
    }

    fn limits_default() -> ExploreLimits {
        ExploreLimits::default()
    }

    #[test]
    fn profile_short_circuits_when_no_threshold_remains_feasible() {
        // A parity protocol (x ≡ 0 mod 2): accepts input 2, rejects input 3.
        // No threshold is consistent with an accept below a reject, so the
        // profile must stop right after slice 3 instead of exploring all
        // slices up to 30.
        let mut b = ProtocolBuilder::new("parity");
        let a0 = b.add_state("a0", Output::True);
        let a1 = b.add_state("a1", Output::False);
        let p1 = b.add_state("p1", Output::True);
        let p0 = b.add_state("p0", Output::False);
        b.add_transition((a1, a1), (a0, p1)).unwrap();
        b.add_transition((a0, a1), (a1, p0)).unwrap();
        b.add_transition((a0, a0), (a0, p1)).unwrap();
        b.add_transition((a0, p0), (a0, p1)).unwrap();
        b.add_transition((a1, p1), (a1, p0)).unwrap();
        b.set_input_state("x", a1);
        let p = b.build().unwrap();

        let profile = unary_threshold_profile(&p, 30, &ExploreLimits::default());
        assert!(!profile.conclusive);
        assert_eq!(
            profile.inputs.len(),
            2,
            "profiling must stop after the infeasible slice 3"
        );
        assert!(profile.inputs[0].accepts && !profile.inputs[0].rejects);
        assert!(profile.inputs[1].rejects && !profile.inputs[1].accepts);
        assert_eq!(profile.verified_threshold(), None);
    }

    #[test]
    fn profile_aborts_on_truncated_slices() {
        let p = threshold2_protocol();
        let profile = unary_threshold_profile(&p, 30, &ExploreLimits::with_max_configs(3));
        assert!(!profile.conclusive);
        assert!(profile.inputs.len() < 29);
        assert_eq!(profile.verified_threshold(), None);
    }
}
