//! E1 driver: tabulate the busy-beaver witness families (states vs threshold)
//! and print the markdown table used in EXPERIMENTS.md.
//!
//! Run with `cargo run --example busy_beaver_families`.

use popproto::experiments::experiment_e1;
use popproto::report::render_e1;

fn main() {
    // Flock protocols up to η = 6, binary counters up to k = 6 (η = 64),
    // leader counters up to k = 3; verify exhaustively up to η = 16.
    let report = experiment_e1(6, 6, 3, 16);
    println!("# E1 — busy beaver witness families (Theorem 2.2 / Example 2.1)\n");
    println!("{}", render_e1(&report.records));
    println!(
        "The binary counter P'_k shows BB(k+2) ≥ 2^k (the Ω(2^n) lower bound); the flock\n\
         protocol needs η+1 states for the same threshold; the leader-assisted counter\n\
         exercises the protocols-with-leaders model at Θ(log η) states (see DESIGN.md for\n\
         the note on the Ω(2^(2^n)) BBL witness of Blondin et al., which is not reproduced)."
    );
}
