//! Drive the batched engine at populations the sequential engine cannot
//! touch.
//!
//! ```text
//! cargo run --release --example batched_simulation -- [population] [majority_percent] [seed]
//! ```
//!
//! Defaults: population 10⁸, 60% initial majority, seed 42.  Simulates the
//! 3-state approximate majority protocol to stabilisation (silence) on both
//! engines where feasible and reports wall-clock times.

use popproto_model::Input;
use popproto_sim::{run_until_convergence, BatchedSimulator, ConvergenceCriterion, Simulator};
use popproto_zoo::approximate_majority;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let population: u64 = args
        .next()
        .map(|a| a.parse().expect("population must be an integer"))
        .unwrap_or(100_000_000);
    let percent: u64 = args
        .next()
        .map(|a| a.parse().expect("majority percent must be an integer"))
        .unwrap_or(60);
    let seed: u64 = args
        .next()
        .map(|a| a.parse().expect("seed must be an integer"))
        .unwrap_or(42);
    assert!(population >= 2, "need at least two agents");
    assert!(
        (1..=99).contains(&percent),
        "majority percent must be in 1..=99"
    );

    let protocol = approximate_majority();
    let a = population * percent / 100;
    let input = Input::from_counts(vec![a, population - a]);
    println!(
        "approximate majority, n = {population} ({a} A vs {} B), seed {seed}",
        population - a
    );

    let start = Instant::now();
    let mut sim = BatchedSimulator::new(protocol.clone(), protocol.initial_config(&input), seed);
    let outcome = run_until_convergence(&mut sim, ConvergenceCriterion::Silent, u64::MAX);
    println!(
        "batched engine:    stabilised = {} output = {:?} parallel time = {:.2} \
         ({} interactions) in {:.3}s",
        outcome.converged,
        outcome.output,
        outcome.parallel_time.unwrap_or(f64::NAN),
        outcome.interactions,
        start.elapsed().as_secs_f64()
    );

    if population <= 1_000_000 {
        let start = Instant::now();
        let mut sim = Simulator::new(protocol.clone(), protocol.initial_config(&input), seed);
        let outcome = run_until_convergence(&mut sim, ConvergenceCriterion::Silent, u64::MAX);
        println!(
            "sequential engine: stabilised = {} output = {:?} parallel time = {:.2} \
             ({} interactions) in {:.3}s",
            outcome.converged,
            outcome.output,
            outcome.parallel_time.unwrap_or(f64::NAN),
            outcome.interactions,
            start.elapsed().as_secs_f64()
        );
    } else {
        println!("sequential engine: skipped (population > 10⁶ would take minutes)");
    }
}
