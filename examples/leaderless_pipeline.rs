//! E6 driver: run the full Section 5 pipeline (saturation → stable basis →
//! concentration → Lemma 5.2 certificate) on the leaderless zoo protocols and
//! compare the empirical pumping bound with the Theorem 5.9 bound.
//!
//! Run with `cargo run --example leaderless_pipeline`.

use popproto::experiments::experiment_e6;
use popproto::pipeline::PipelineOptions;
use popproto::report::render_e6;
use popproto_zoo::{binary_counter, flock};

fn main() {
    let instances = vec![
        (flock(3), 3),
        (flock(5), 5),
        (binary_counter(2), 4),
        (binary_counter(3), 8),
    ];
    let rows = experiment_e6(&instances, &PipelineOptions::default());
    println!("# E6 — the Section 5 pipeline on leaderless protocols\n");
    println!("{}", render_e6(&rows));
    for row in &rows {
        if let Some(cert) = &row.analysis.certificate {
            println!(
                "{}: saturation input i0 = {}, scale m = {}, pumping input b = {}, |θ| = {}, \
                 anchor a = {} (true η = {})",
                row.analysis.protocol,
                cert.saturation_input,
                cert.scale,
                cert.b,
                cert.parikh.size(),
                cert.a,
                row.true_eta
            );
        } else {
            println!(
                "{}: no certificate within the search caps (true η = {})",
                row.analysis.protocol, row.true_eta
            );
        }
    }
}
