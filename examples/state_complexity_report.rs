//! End-to-end report: run every experiment (E1–E10) at small scale — plus
//! the E8 large-population rows (batched engine, n ∈ {10⁶, 10⁸}) — and print
//! the aggregated markdown report, plus the raw JSON for archival.
//!
//! Run with `cargo run --release --example state_complexity_report`.
//! Pass `--small` to skip the large-population E8 rows (useful on slow
//! machines; they take a few seconds of wall clock).

use popproto::experiments::{run_all_small, run_all_with_large_e8};
use popproto::report::render_full;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let report = if small {
        run_all_small()
    } else {
        run_all_with_large_e8()
    };
    println!("{}", render_full(&report));
    println!("\n## Raw data (JSON)\n");
    match serde_json::to_string_pretty(&report) {
        Ok(json) => println!("{json}"),
        Err(err) => eprintln!("failed to serialise the report: {err}"),
    }
}
