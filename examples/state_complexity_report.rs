//! End-to-end report: run every experiment (E1–E10) at small scale and print
//! the aggregated markdown report, plus the raw JSON for archival.
//!
//! Run with `cargo run --release --example state_complexity_report`.

use popproto::experiments::run_all_small;
use popproto::report::render_full;

fn main() {
    let report = run_all_small();
    println!("{}", render_full(&report));
    println!("\n## Raw data (JSON)\n");
    match serde_json::to_string_pretty(&report) {
        Ok(json) => println!("{json}"),
        Err(err) => eprintln!("failed to serialise the report: {err}"),
    }
}
