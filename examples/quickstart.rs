//! Quickstart: build a protocol, verify it exhaustively on small inputs,
//! simulate it on a larger population, and print the paper's bounds.
//!
//! Run with `cargo run --example quickstart`.

use popproto::constants;
use popproto::prelude::*;
use popproto_sim::{run_until_convergence, ConvergenceCriterion};

fn main() {
    // 1. Build the succinct threshold protocol P'_3 of Example 2.1: 5 states
    //    deciding x ≥ 8.
    let protocol = popproto_zoo::binary_counter(3);
    println!("{protocol}");

    // 2. Verify it exhaustively for all inputs 2..=12 (the paper's
    //    stable-consensus correctness criterion, checked on each slice).
    let report = verify_unary_threshold(&protocol, 8, 12, &ExploreLimits::default());
    println!(
        "exhaustive verification of x >= 8 on inputs 2..=12: {}",
        if report.all_correct() {
            "correct"
        } else {
            "INCORRECT"
        }
    );

    // 3. Simulate a population of 500 agents and measure the parallel time.
    let mut sim = Simulator::new(protocol.clone(), protocol.initial_config_unary(500), 7);
    let outcome = run_until_convergence(&mut sim, ConvergenceCriterion::Silent, 5_000_000);
    println!(
        "simulation with 500 agents: converged = {}, output = {:?}, parallel time ≈ {:.1}",
        outcome.converged,
        outcome.output,
        outcome.parallel_time.unwrap_or(f64::NAN)
    );

    // 4. The paper's Theorem 5.9 upper bound for 5-state leaderless protocols,
    //    next to the threshold this 5-state protocol actually achieves.
    let bound = constants::theorem_5_9_simple_bound(protocol.num_states());
    println!(
        "Theorem 5.9: any 5-state leaderless protocol computes x >= η only for η ≤ {bound}; \
         P'_3 achieves η = 8"
    );
}
