//! Umbrella crate of the state-complexity reproduction workspace.
//!
//! This crate only exists to anchor the repository-level integration tests
//! (`tests/`) and examples (`examples/`); the actual functionality lives in
//! the workspace members:
//!
//! * [`popproto_model`] — protocols, configurations, transitions;
//! * [`popproto_numerics`] — magnitudes, fast-growing hierarchy, big naturals;
//! * [`popproto_vas`] — vector addition systems, Hilbert bases, Pottier bounds;
//! * [`popproto_reach`] — reachability, coverability, stable sets;
//! * [`popproto_zoo`] — the protocol families used as witnesses;
//! * [`popproto_sim`] — the two-tier simulation engine (sequential + batched);
//! * [`popproto`] — the experiment drivers E1–E10 and report rendering.

#![forbid(unsafe_code)]

pub use popproto;
pub use popproto_model;
pub use popproto_numerics;
pub use popproto_reach;
pub use popproto_sim;
pub use popproto_vas;
pub use popproto_zoo;
