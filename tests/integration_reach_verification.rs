//! Cross-crate integration tests: exhaustive verification of the zoo
//! protocols against their predicates, and the structural facts of Section 3
//! (downward closure, small bases) on concrete protocols.

use popproto::prelude::*;
use popproto_reach::{extract_stable_basis, stable::is_stable_config};
use popproto_vas::BasisElement;
use popproto_zoo::{binary_counter, flock, leader_counter, majority, modulo};

#[test]
fn zoo_protocols_verify_exhaustively() {
    let limits = ExploreLimits::default();
    // (protocol, eta, max input) triples sized to stay exhaustive.
    let cases = vec![
        (flock(2), 2, 9),
        (flock(3), 3, 9),
        (flock(4), 4, 9),
        (binary_counter(1), 2, 9),
        (binary_counter(2), 4, 9),
        (binary_counter(3), 8, 11),
        (leader_counter(1), 2, 8),
        (leader_counter(2), 4, 8),
    ];
    for (protocol, eta, max_input) in cases {
        let report = verify_unary_threshold(&protocol, eta, max_input, &limits);
        assert!(
            report.all_correct() && report.all_exhaustive(),
            "{} must compute x >= {eta}: failures {:?}",
            protocol.name(),
            report.failures().len()
        );
    }
}

#[test]
fn majority_verifies_on_small_inputs() {
    let limits = ExploreLimits::default();
    let p = majority();
    let predicate = Predicate::majority();
    let inputs: Vec<Input> = (0..=4u64)
        .flat_map(|a| (0..=4u64).map(move |b| Input::from_counts(vec![a, b])))
        .filter(|i| i.total() >= 2)
        .collect();
    let report = popproto_reach::verify_predicate(&p, &predicate, &inputs, &limits);
    assert!(
        report.all_correct(),
        "majority failures: {:?}",
        report
            .failures()
            .iter()
            .map(|f| f.input.clone())
            .collect::<Vec<_>>()
    );
}

#[test]
fn modulo_verifies_on_small_inputs() {
    let limits = ExploreLimits::default();
    let p = modulo(3, 1);
    let report = popproto_reach::verify_predicate(
        &p,
        &Predicate::count_mod(3, 1),
        &(2..=8).map(Input::unary).collect::<Vec<_>>(),
        &limits,
    );
    assert!(report.all_correct());
}

#[test]
fn wrong_thresholds_are_rejected_for_every_zoo_protocol() {
    let limits = ExploreLimits::default();
    for (protocol, eta) in [(flock(3), 3u64), (binary_counter(2), 4)] {
        // Claiming a different threshold must fail verification.
        let too_low = verify_unary_threshold(&protocol, eta - 1, eta + 3, &limits);
        let too_high = verify_unary_threshold(&protocol, eta + 1, eta + 3, &limits);
        assert!(!too_low.all_correct(), "{} vs eta-1", protocol.name());
        assert!(!too_high.all_correct(), "{} vs eta+1", protocol.name());
    }
}

#[test]
fn stable_sets_are_downward_closed_on_slices() {
    // Lemma 3.1 checked empirically for the binary counter: every
    // subconfiguration of a 1-stable configuration is 1-stable.
    let p = binary_counter(2);
    let limits = ExploreLimits::default();
    let stable =
        popproto_reach::basis_extract::stable_configs_of_size(&p, Output::True, 5, &limits);
    assert!(!stable.is_empty());
    for c in &stable {
        for (q, count) in c.iter() {
            if count == 0 {
                continue;
            }
            let mut smaller = c.clone();
            smaller.remove(q, 1);
            if smaller.size() < 2 {
                continue;
            }
            assert_eq!(
                is_stable_config(&p, &smaller, Output::True, &limits),
                Some(true),
                "downward closure violated below {c}"
            );
        }
    }
}

#[test]
fn extracted_bases_cover_their_stable_sets() {
    let limits = ExploreLimits::default();
    for p in [flock(3), binary_counter(2)] {
        for output in [Output::False, Output::True] {
            let basis = extract_stable_basis(&p, output, 5, 2, &limits);
            let seeds =
                popproto_reach::basis_extract::stable_configs_of_size(&p, output, 5, &limits);
            assert!(basis.covers(&seeds), "{} {output}", p.name());
            assert!(basis.verified, "{} {output}", p.name());
        }
    }
}

#[test]
fn basis_elements_certify_membership_of_larger_stable_configs() {
    // A basis element extracted at slice size 5 also contains the stable
    // configurations of larger slices (the point of the (B, S) representation).
    let p = binary_counter(2);
    let limits = ExploreLimits::default();
    let basis = extract_stable_basis(&p, Output::True, 5, 1, &limits);
    let larger =
        popproto_reach::basis_extract::stable_configs_of_size(&p, Output::True, 8, &limits);
    assert!(!larger.is_empty());
    for c in &larger {
        assert!(
            basis.elements.iter().any(|e: &BasisElement| e.contains(c)),
            "no extracted element contains {c}"
        );
    }
}
