//! Cross-crate integration tests: pumping certificates (Lemma 4.1), the
//! Section 5 pipeline (Lemma 5.2 / Theorem 5.9) and the Pottier machinery,
//! all exercised on the zoo protocols.

use popproto::certificate::{search_pumping_certificate, stable_chain};
use popproto::concentration::find_zero_concentrated_multiset;
use popproto::constants;
use popproto::pipeline::{analyze_leaderless_protocol, PipelineOptions};
use popproto::prelude::*;
use popproto_numerics::Magnitude;
use popproto_vas::{HilbertOptions, ParikhImage, RealisabilitySystem};
use popproto_zoo::{binary_counter, flock};

#[test]
fn pumping_certificates_bound_the_threshold_from_above() {
    let limits = ExploreLimits::default();
    for (protocol, eta) in [(flock(2), 2u64), (flock(3), 3), (binary_counter(2), 4)] {
        let cert = search_pumping_certificate(&protocol, eta + 6, &limits)
            .unwrap_or_else(|| panic!("{} should yield a certificate", protocol.name()));
        let check = cert.verify(&protocol, 3, &limits);
        assert!(check.all_passed(), "{}", protocol.name());
        // For an accepting-class certificate, a ≥ η; either way a is an upper
        // bound on any threshold the protocol could compute.
        if cert.output == Output::True {
            assert!(
                cert.a >= eta,
                "{}: a = {} < η = {eta}",
                protocol.name(),
                cert.a
            );
        }
    }
}

#[test]
fn stable_chains_respect_the_predicate() {
    let limits = ExploreLimits::default();
    let p = binary_counter(2); // x ≥ 4
    let chain = stable_chain(&p, 9, &limits);
    assert!(chain.len() >= 6);
    for (input, config, output) in &chain {
        assert_eq!(config.size(), *input);
        assert_eq!(
            output.as_bool(),
            *input >= 4,
            "input {input} stabilised to the wrong class"
        );
    }
}

#[test]
fn pipeline_certificates_verify_and_dominate_eta() {
    let options = PipelineOptions::default();
    for (protocol, eta) in [(flock(3), 3u64), (binary_counter(2), 4)] {
        let analysis = analyze_leaderless_protocol(&protocol, &options);
        let cert = analysis
            .certificate
            .unwrap_or_else(|| panic!("{} should yield a Lemma 5.2 certificate", protocol.name()));
        assert!(cert.checks.all_passed());
        assert!(cert.a >= eta);
        assert!(cert.b >= 1);
        // The increment is supported inside the ω-set S.
        for (q, _) in cert.increment.iter() {
            assert!(cert.omega_states.contains(&q));
        }
        // The anchor is minuscule compared to Theorem 5.9.
        assert!(Magnitude::from_u64(cert.a) < analysis.theorem_bound);
    }
}

#[test]
fn potential_realisability_is_necessary_for_reachability() {
    // Lemma 5.1(i): every actually firable sequence has a potentially
    // realisable Parikh image.  Check it for all short sequences of the flock
    // protocol by enumerating paths in the reachability graph.
    let p = flock(3);
    let system = RealisabilitySystem::new(&p);
    let ic = p.initial_config_unary(5);
    // Walk all length-≤3 transition sequences explicitly.
    let mut frontier = vec![(ic.clone(), ParikhImage::empty(p.num_transitions()))];
    for _ in 0..3 {
        let mut next = Vec::new();
        for (config, parikh) in &frontier {
            for (t_idx, succ) in p.successors_with_transitions(config) {
                let mut pi = parikh.clone();
                pi.add(t_idx, 1);
                assert!(
                    system.is_potentially_realisable(&pi),
                    "fired multiset {pi} must be potentially realisable"
                );
                next.push((succ, pi));
            }
        }
        frontier.extend(next);
    }
}

#[test]
fn concentration_reports_respect_corollary_57() {
    for protocol in [flock(3), flock(4), binary_counter(2)] {
        let accepting = protocol.states_with_output(Output::True);
        let report =
            find_zero_concentrated_multiset(&protocol, &accepting, &HilbertOptions::default());
        assert!(report.basis_complete, "{}", protocol.name());
        let found = report
            .found
            .expect("accepting states admit a concentrated multiset");
        assert!(found.parikh.size() <= report.pottier_half_bound);
        assert!(found.input >= 1);
        assert!(found.input <= 2 * report.pottier_half_bound);
    }
}

#[test]
fn theorem_bounds_are_ordered_across_the_zoo() {
    // ξ·n·β·3^n ≤ 2^((2n+2)!) for every zoo protocol (the paper's final step).
    for instance in popproto_zoo::catalog() {
        let p = &instance.protocol;
        let sharp = constants::theorem_5_9_bound(p);
        let simple = constants::theorem_5_9_simple_bound(p.num_states());
        assert!(sharp <= simple, "{}", p.name());
    }
}
