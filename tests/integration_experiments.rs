//! Integration tests of the experiment drivers (E1–E10) at small scale: the
//! shapes reported in EXPERIMENTS.md must hold whenever the tests run.

use popproto::experiments::*;
use popproto::pipeline::PipelineOptions;
use popproto::report;
use popproto_numerics::Magnitude;
use popproto_zoo::{binary_counter, flock};

#[test]
fn e1_shape_binary_counter_dominates_flock() {
    let e1 = experiment_e1(5, 4, 2, 10);
    // Shape of Theorem 2.2: at equal thresholds, the binary counter uses
    // exponentially fewer states than the flock protocol; its succinctness
    // rate log₂(η)/states approaches a constant while flock's tends to 0.
    let counter_rate = e1
        .records
        .iter()
        .filter(|r| {
            matches!(
                r.family,
                popproto::busy_beaver::WitnessFamily::BinaryCounter
            )
        })
        .map(|r| r.log2_eta_per_state())
        .fold(0.0f64, f64::max);
    let flock_rate = e1
        .records
        .iter()
        .filter(|r| matches!(r.family, popproto::busy_beaver::WitnessFamily::Flock))
        .map(|r| r.log2_eta_per_state())
        .fold(0.0f64, f64::max);
    assert!(counter_rate > flock_rate);
    // No verified record may be wrong.
    assert!(e1.records.iter().all(|r| r.verified != Some(false)));
}

#[test]
fn e2_empirical_norms_are_far_below_beta() {
    let rows = experiment_e2(&[flock(3), binary_counter(2)], 5);
    assert_eq!(rows.len(), 4);
    for row in &rows {
        assert!(row.verified, "{} {:?}", row.protocol, row.output);
        // The empirical norm is single-digit; β is at least 2^241 here.
        assert!(row.empirical_norm <= 5);
        assert!(Magnitude::from_u64(row.empirical_norm.max(1)) < row.beta);
    }
}

#[test]
fn e3_certificates_exist_and_ackermann_ingredients_dwarf_eta() {
    let rows = experiment_e3(&[(flock(3), 3), (binary_counter(2), 4)], 10);
    for row in &rows {
        let cert = row.certificate.as_ref().expect("certificate found");
        assert!(cert.b >= 1);
        assert!(row.ackermann_bound.basis_size_bound > Magnitude::from_u64(row.true_eta));
    }
}

#[test]
fn e4_saturation_is_far_below_3n() {
    let rows = experiment_e4(&[flock(3), binary_counter(2)], 25);
    for row in &rows {
        let w = row.analysis.witness.as_ref().expect("saturation witness");
        assert!(row.analysis.within_bound);
        assert!(w.input * 4 < row.analysis.bound_3n, "{}", row.protocol);
    }
}

#[test]
fn e5_and_e9_pottier_bounds_hold_and_deterministic_bound_is_smaller() {
    let rows = experiment_e5(&[flock(3), binary_counter(2), binary_counter(3)]);
    for row in &rows {
        assert!(row.complete, "{}", row.protocol);
        assert!(row.max_norm <= row.pottier_half_bound);
        if let Some(det) = row.deterministic_bound {
            // Remark 1: for deterministic protocols with |T| ≥ |Q| the
            // deterministic constant is no larger than the general one.
            if row.transitions >= 4 {
                assert!(det <= row.pottier_half_bound);
            }
        }
    }
}

#[test]
fn e6_pipeline_bounds_sandwich_the_true_threshold() {
    let rows = experiment_e6(
        &[(flock(3), 3), (binary_counter(2), 4)],
        &PipelineOptions::default(),
    );
    for row in &rows {
        let bound = row.analysis.empirical_bound.expect("pipeline bound");
        assert!(bound >= row.true_eta);
        assert!(Magnitude::from_u64(bound) < row.analysis.theorem_bound);
    }
}

#[test]
fn e7_enumeration_finds_the_two_state_busy_beaver() {
    let results = experiment_e7(2, 6, 50_000);
    assert_eq!(results.len(), 2);
    assert_eq!(results[0].best_eta, Some(2)); // 1 state
    assert_eq!(results[1].best_eta, Some(2)); // 2 states
    assert!(results[1].protocols_examined > results[0].protocols_examined);
}

#[test]
fn e8_parallel_time_grows_slowly_with_population() {
    let rows = experiment_e8(&[16, 64], 3, 2_000_000);
    // Every run converges and the mean parallel time does not explode by the
    // population factor (it is roughly O(n log n)/n per the literature).
    for row in &rows {
        assert_eq!(
            row.converged, row.runs,
            "{} n={}",
            row.protocol, row.population
        );
    }
    for protocol in ["flock(4)", "binary_counter(3) [x >= 2^3]"] {
        let t16 = rows
            .iter()
            .find(|r| r.protocol == protocol && r.population == 16)
            .unwrap()
            .mean_parallel_time;
        let t64 = rows
            .iter()
            .find(|r| r.protocol == protocol && r.population == 64)
            .unwrap()
            .mean_parallel_time;
        assert!(
            t64 < t16 * 16.0,
            "{protocol}: parallel time should grow sublinearly in the population (t16={t16}, t64={t64})"
        );
    }
}

#[test]
fn e10_controlled_bad_sequences_match_closed_forms() {
    let rows = experiment_e10(2, 3, 2_000_000);
    for row in &rows {
        if row.dimension == 1 && row.exact {
            assert_eq!(row.length as u64, row.delta + 1);
        }
    }
    // Dimension 2 exceeds dimension 1 at equal δ ≥ 1 whenever both are exact
    // (at δ = 0 both start with the zero vector and stop immediately).
    for delta in 1..=2u64 {
        let d1 = rows
            .iter()
            .find(|r| r.dimension == 1 && r.delta == delta)
            .unwrap();
        let d2 = rows
            .iter()
            .find(|r| r.dimension == 2 && r.delta == delta)
            .unwrap();
        if d1.exact && d2.exact {
            assert!(d2.length > d1.length);
        }
    }
}

#[test]
fn full_report_renders() {
    let full = run_all_small();
    let text = report::render_full(&full);
    assert!(text.contains("E1"));
    assert!(text.contains("E6"));
    assert!(text.contains("binary_counter"));
    // The report serialises to JSON for archival.
    let json = serde_json::to_string(&full).unwrap();
    assert!(json.len() > 1000);
}
