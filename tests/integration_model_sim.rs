//! Cross-crate integration tests: the model, the zoo and the simulator.
//!
//! These tests check that the *simulated* semantics agrees with the
//! *predicates* the zoo protocols claim to compute, on populations far larger
//! than anything the exhaustive engine could explore.

use popproto::prelude::*;
use popproto_sim::{run_until_convergence, ConvergenceCriterion};
use popproto_zoo::{binary_counter, flock, leader_counter, modulo};

fn simulate_to_silence(protocol: &Protocol, input: Input, seed: u64) -> Option<bool> {
    let mut sim = Simulator::new(protocol.clone(), protocol.initial_config(&input), seed);
    let outcome = run_until_convergence(&mut sim, ConvergenceCriterion::Silent, 10_000_000);
    assert!(
        outcome.converged,
        "simulation must reach a silent configuration"
    );
    outcome.output
}

#[test]
fn flock_simulation_matches_predicate_on_large_populations() {
    let p = flock(10);
    assert_eq!(simulate_to_silence(&p, Input::unary(9), 1), Some(false));
    assert_eq!(simulate_to_silence(&p, Input::unary(10), 2), Some(true));
    assert_eq!(simulate_to_silence(&p, Input::unary(300), 3), Some(true));
}

#[test]
fn binary_counter_simulation_matches_predicate() {
    let p = binary_counter(5); // x ≥ 32
    assert_eq!(simulate_to_silence(&p, Input::unary(31), 4), Some(false));
    assert_eq!(simulate_to_silence(&p, Input::unary(32), 5), Some(true));
    assert_eq!(simulate_to_silence(&p, Input::unary(200), 6), Some(true));
}

#[test]
fn leader_counter_simulation_matches_predicate() {
    let p = leader_counter(4); // x ≥ 16, 4 leader agents
    assert_eq!(simulate_to_silence(&p, Input::unary(15), 7), Some(false));
    assert_eq!(simulate_to_silence(&p, Input::unary(16), 8), Some(true));
    assert_eq!(simulate_to_silence(&p, Input::unary(100), 9), Some(true));
}

#[test]
fn modulo_simulation_matches_predicate() {
    let p = modulo(5, 2); // x ≡ 2 (mod 5)
    assert_eq!(simulate_to_silence(&p, Input::unary(47), 10), Some(true)); // 47 ≡ 2
    assert_eq!(simulate_to_silence(&p, Input::unary(50), 11), Some(false));
    assert_eq!(simulate_to_silence(&p, Input::unary(7), 12), Some(true));
}

#[test]
fn simulation_and_exhaustive_verification_agree_on_small_slices() {
    // For every catalogued unary protocol and every small input, the
    // simulated answer equals the exhaustively verified answer.
    let limits = ExploreLimits::default();
    for instance in popproto_zoo::catalog() {
        if !instance.protocol.is_unary() {
            continue;
        }
        for i in 2..=6u64 {
            let expected = instance.predicate.eval(&Input::unary(i));
            let verdict = popproto_reach::verify::verify_input(
                &instance.protocol,
                &instance.predicate,
                &Input::unary(i),
                &limits,
            );
            assert!(
                verdict.correct,
                "{} must compute {} at input {i}",
                instance.protocol.name(),
                instance.predicate
            );
            let simulated = simulate_to_silence(&instance.protocol, Input::unary(i), 100 + i);
            assert_eq!(
                simulated,
                Some(expected),
                "{} diverges from its predicate at input {i}",
                instance.protocol.name()
            );
        }
    }
}

#[test]
fn monotonicity_property_of_executions() {
    // The paper's monotonicity property: if C -> C' then C + D -> C' + D.
    // Check it on the transition level for every zoo transition.
    for instance in popproto_zoo::catalog() {
        let p = &instance.protocol;
        for t in p.transitions() {
            let pre = t.pre.as_config(p.num_states());
            let post = t
                .fire(&pre)
                .expect("a transition is enabled at its own precondition");
            let padding = Config::from_counts(vec![1; p.num_states()]);
            let padded_pre = pre.plus(&padding);
            let padded_post = t.fire(&padded_pre).expect("monotonicity: still enabled");
            assert_eq!(padded_post, post.plus(&padding));
        }
    }
}
